#include "analysis/popularity.h"

#include <gtest/gtest.h>

#include "resolver/snoop.h"

namespace dnswild::analysis {
namespace {

using resolver::SnoopModel;
using resolver::SnoopProfile;

std::vector<scan::SnoopSeries> series_for(SnoopProfile profile,
                                          std::uint64_t seed,
                                          int hours = 36) {
  SnoopModel model;
  model.profile = profile;
  model.tld_ttl = 21600;
  static const std::vector<std::string> kTlds = {
      "br", "cn", "com", "de", "fr", "in", "it", "jp", "net", "nl", "org",
      "pl", "ru", "info", "co.uk"};
  std::vector<scan::SnoopSeries> out;
  for (std::uint16_t t = 0; t < kTlds.size(); ++t) {
    scan::SnoopSeries entry;
    entry.resolver_index = 0;
    entry.tld_index = t;
    int seen = 0;
    for (int hour = 0; hour <= hours; ++hour) {
      const auto sample = model.sample(kTlds[t], hour * 3600, seed, seen++);
      scan::SnoopSample out_sample;
      out_sample.minute = hour * 60;
      out_sample.responded = sample.respond;
      out_sample.cached = sample.cached;
      out_sample.remaining_ttl = sample.remaining_ttl;
      entry.samples.push_back(out_sample);
    }
    out.push_back(std::move(entry));
  }
  return out;
}

PopularityEstimate estimate(SnoopProfile profile, std::uint64_t seed) {
  const auto series = series_for(profile, seed);
  std::vector<const scan::SnoopSeries*> views;
  for (const auto& entry : series) views.push_back(&entry);
  return estimate_popularity(views, 21600);
}

TEST(Popularity, FastRefreshersLookBusy) {
  // kActiveFast re-adds within 1-5 s of expiry: >= 720 requests/hour.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto result = estimate(SnoopProfile::kActiveFast, seed);
    EXPECT_GT(result.refresh_samples, 0) << seed;
    EXPECT_GT(result.requests_per_hour, 60.0) << seed;
    EXPECT_EQ(bucket_of(result), PopularityBucket::kBusy) << seed;
  }
}

TEST(Popularity, SlowRefreshersLookLightOrModerate) {
  // kActiveSlow gaps are 10 min .. 4 h: 0.25 .. 6 requests/hour.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto result = estimate(SnoopProfile::kActiveSlow, seed);
    if (result.refresh_samples == 0) continue;  // window may miss all gaps
    EXPECT_LT(result.requests_per_hour, 60.0) << seed;
    const auto bucket = bucket_of(result);
    EXPECT_TRUE(bucket == PopularityBucket::kLight ||
                bucket == PopularityBucket::kModerate)
        << seed;
  }
}

TEST(Popularity, EmptyCachesAreUnobservable) {
  const auto result = estimate(SnoopProfile::kNoCache, 3);
  EXPECT_EQ(result.refresh_samples, 0);
  EXPECT_EQ(bucket_of(result), PopularityBucket::kUnobservable);
}

TEST(Popularity, GapEstimateTracksTrueGap) {
  // Exact analytic check: for the periodic model, the measured gap equals
  // the model's configured gap, so λ^ = 3600 / gap.
  SnoopModel model;
  model.profile = SnoopProfile::kActiveSlow;
  model.tld_ttl = 21600;
  const std::uint64_t seed = 42;
  const auto series = series_for(SnoopProfile::kActiveSlow, seed);
  std::vector<const scan::SnoopSeries*> views;
  for (const auto& entry : series) views.push_back(&entry);
  const auto result = estimate_popularity(views, 21600);
  if (result.refresh_samples > 0) {
    EXPECT_GT(result.requests_per_hour, 3600.0 / (4.0 * 3600.0) * 0.5);
    EXPECT_LT(result.requests_per_hour, 3600.0 / 600.0 * 2.0);
  }
}

TEST(Popularity, SummarizeBucketsPerResolver) {
  auto fast = series_for(SnoopProfile::kActiveFast, 5);
  auto empty = series_for(SnoopProfile::kNoCache, 6);
  for (auto& entry : empty) entry.resolver_index = 1;
  std::vector<scan::SnoopSeries> all;
  all.insert(all.end(), fast.begin(), fast.end());
  all.insert(all.end(), empty.begin(), empty.end());
  const auto report = summarize_popularity(all, 2, 21600);
  EXPECT_EQ(report.resolvers, 2u);
  EXPECT_EQ(report.per_bucket[static_cast<int>(PopularityBucket::kBusy)], 1u);
  EXPECT_EQ(report.per_bucket[static_cast<int>(
                PopularityBucket::kUnobservable)],
            1u);
  EXPECT_GT(report.median_requests_per_hour, 60.0);
}

TEST(Popularity, BucketNames) {
  EXPECT_EQ(popularity_bucket_name(PopularityBucket::kBusy), "> 60 req/h");
  EXPECT_EQ(popularity_bucket_name(PopularityBucket::kUnobservable),
            "unobservable");
}

}  // namespace
}  // namespace dnswild::analysis
