// Event-driven virtual-time scan core (DESIGN.md §11).
//
// Contracts under test, mirroring the acceptance criteria:
//   1. Determinism — the drained event trace is identical across runs and
//      strictly increasing in the event-key order (time, stream, step,
//      attempt, kind), so replays are byte-for-byte reproducible.
//   2. Thread invariance — a chaos-profile scan produces byte-identical
//      masked metrics reports and identical virtual durations for 1/2/8
//      worker threads (the simulation is serial over pure per-probe
//      timings).
//   3. Window safety — the in-flight count never exceeds max_in_flight
//      for any window, every stream completes, and opening the window
//      never lengthens the virtual makespan (property test).
//   4. Retry interleaving — a silent stream's retransmissions overlap
//      with other streams' fresh sends instead of blocking them.
//   5. Async payoff — on a lossy world with a three-retransmission
//      ladder the event-core makespan beats the synchronous sum-of-waits
//      baseline, and a window of one costs >= 2x the open window.
#include "scan/event_core.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "scan/ipv4scan.h"
#include "scan/ratelimit.h"
#include "scan/retry.h"
#include "util/rng.h"
#include "worldgen/worldgen.h"

namespace dnswild {
namespace {

using scan::EventCoreConfig;
using scan::EventScanCore;
using scan::EventStats;
using scan::ProbeTiming;
using scan::ScanEvent;

// Deterministic synthetic workload mixing the outcome shapes the scanners
// produce: skipped targets (transmissions == 0), single-shot replies,
// ladders that recover late, and ladders that exhaust silently.
std::vector<ProbeTiming> synthetic_timings(std::uint64_t streams,
                                           std::uint32_t steps,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ProbeTiming> timings(streams * steps);
  for (ProbeTiming& timing : timings) {
    timing.probe_key = rng.next() | 1;
    const double roll = rng.uniform();
    if (roll < 0.05) {
      timing.transmissions = 0;  // reserved/blacklisted: never on the wire
      timing.responded = false;
    } else if (roll < 0.70) {
      timing.transmissions = 1;
      timing.responded = true;
      timing.reply_latency_ms = static_cast<std::uint32_t>(rng.below(300));
    } else if (roll < 0.85) {
      timing.transmissions = static_cast<std::uint16_t>(2 + rng.below(2));
      timing.responded = true;  // recovered on the final attempt
      timing.reply_latency_ms =
          static_cast<std::uint32_t>(50 + rng.below(400));
    } else {
      timing.transmissions = 3;
      timing.responded = false;  // exhausted the ladder
    }
  }
  return timings;
}

EventCoreConfig test_config(std::uint32_t window) {
  EventCoreConfig config;
  config.max_in_flight = window;
  config.retry.attempts = 3;
  config.retry.timeout_ms = 800;
  config.retry.seed = 7;
  return config;
}

TEST(EventKey, StrictTotalOrderRanksFieldsInOrder) {
  const ScanEvent base{1000, 2, 3, 1, ScanEvent::Kind::kReply};
  ScanEvent later = base;
  later.time_us = 1001;
  EXPECT_TRUE(event_key_less(base, later));
  EXPECT_FALSE(event_key_less(later, base));

  ScanEvent stream = base;
  stream.stream = 3;
  EXPECT_TRUE(event_key_less(base, stream));

  ScanEvent step = base;
  step.step = 4;
  EXPECT_TRUE(event_key_less(base, step));

  ScanEvent attempt = base;
  attempt.attempt = 2;
  EXPECT_TRUE(event_key_less(base, attempt));

  ScanEvent send = base;
  send.kind = ScanEvent::Kind::kSend;
  EXPECT_TRUE(event_key_less(send, base));  // kSend drains before kReply

  EXPECT_FALSE(event_key_less(base, base));  // irreflexive
}

TEST(EventCore, TraceIsDeterministicAndStrictlyOrdered) {
  const auto timings = synthetic_timings(64, 3, 11);
  EventScanCore core(nullptr, test_config(16));

  std::vector<ScanEvent> first;
  const EventStats stats_a = core.run(timings, 64, 3, &first);
  std::vector<ScanEvent> second;
  const EventStats stats_b = core.run(timings, 64, 3, &second);

  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  EXPECT_TRUE(std::equal(first.begin(), first.end(), second.begin()));
  EXPECT_DOUBLE_EQ(stats_a.virtual_seconds, stats_b.virtual_seconds);
  EXPECT_EQ(stats_a.events, stats_b.events);
  EXPECT_EQ(stats_a.events, first.size());

  // Drain order is strictly increasing in the event key: every event the
  // simulation schedules keys after the event that scheduled it, so the
  // heap never ties and never goes backwards.
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_TRUE(event_key_less(first[i - 1], first[i]))
        << "trace not strictly ordered at index " << i;
  }
}

TEST(EventCore, WindowIsNeverExceededAndAllStreamsComplete) {
  const std::uint64_t streams = 48;
  const std::uint32_t steps = 2;
  const auto timings = synthetic_timings(streams, steps, 23);

  double previous_makespan = 0.0;
  bool have_previous = false;
  for (const std::uint32_t window : {1u, 2u, 7u, 64u}) {
    EventScanCore core(nullptr, test_config(window));
    std::vector<ScanEvent> trace;
    const EventStats stats = core.run(timings, streams, steps, &trace);

    EXPECT_LE(stats.peak_in_flight, window) << "window " << window;
    EXPECT_EQ(stats.completed_streams, streams) << "window " << window;

    // Reconstruct occupancy from the trace: a stream holds a slot from
    // its first send (step 0, attempt 0) until its last step's reply.
    std::uint32_t in_flight = 0;
    std::uint32_t peak = 0;
    for (const ScanEvent& event : trace) {
      if (event.kind == ScanEvent::Kind::kSend && event.step == 0 &&
          event.attempt == 0) {
        peak = std::max(peak, ++in_flight);
      } else if (event.kind == ScanEvent::Kind::kReply &&
                 event.step == steps - 1) {
        ASSERT_GT(in_flight, 0u);
        --in_flight;
      }
    }
    EXPECT_EQ(in_flight, 0u) << "window " << window;
    EXPECT_LE(peak, window) << "window " << window;
    EXPECT_EQ(peak, stats.peak_in_flight) << "window " << window;

    // Opening the window can only shorten (or preserve) the makespan.
    if (have_previous) {
      EXPECT_LE(stats.virtual_seconds, previous_makespan)
          << "window " << window;
    }
    previous_makespan = stats.virtual_seconds;
    have_previous = true;
  }
}

TEST(EventCore, RetryEventsInterleaveWithFreshSends) {
  // Stream 0 is silent through a three-send ladder; the rest answer on
  // the first try. With an open window the retransmissions of stream 0
  // must not block the other streams' first sends.
  const std::uint64_t streams = 6;
  std::vector<ProbeTiming> timings(streams);
  for (std::uint64_t i = 0; i < streams; ++i) {
    timings[i].probe_key = 0x9e3779b97f4a7c15ULL * (i + 1) | 1;
    timings[i].transmissions = i == 0 ? 3 : 1;
    timings[i].responded = i != 0;
    timings[i].reply_latency_ms = 20;
  }

  EventScanCore core(nullptr, test_config(64));
  std::vector<ScanEvent> trace;
  const EventStats stats = core.run(timings, streams, 1, &trace);
  EXPECT_EQ(stats.retry_events, 2u);  // stream 0's attempts 1 and 2

  std::size_t retry_index = trace.size();
  std::size_t last_fresh_index = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const ScanEvent& event = trace[i];
    if (event.kind != ScanEvent::Kind::kSend) continue;
    if (event.stream == 0 && event.attempt == 1) retry_index = i;
    if (event.attempt == 0 && event.stream != 0) last_fresh_index = i;
  }
  ASSERT_LT(retry_index, trace.size());
  // Every other stream's fresh send drains before stream 0's first
  // retransmission: the ladder waited virtually while the window kept
  // admitting work.
  EXPECT_GT(retry_index, last_fresh_index);
  EXPECT_EQ(stats.completed_streams, streams);
}

// --- Full-scan acceptance ------------------------------------------------

worldgen::WorldGenConfig lossy_world_config() {
  worldgen::WorldGenConfig config;
  config.seed = 2015;
  config.resolver_count = 400;
  config.with_devices = false;
  config.chaos.enabled = true;
  config.chaos.network_fraction = 1.0;
  config.chaos.episode_rate = 1.0;
  config.chaos.episode_mean_buckets = 8.0;
  config.chaos.burst_loss = 0.10;
  config.chaos.base_loss = 0.10;
  return config;
}

scan::Ipv4ScanSummary lossy_scan(std::uint32_t window, unsigned threads) {
  worldgen::GeneratedWorld gen =
      worldgen::generate_world(lossy_world_config());
  scan::Ipv4ScanConfig config;
  config.scanner_ip = gen.scanner_ip;
  config.zone = gen.scan_zone;
  config.blacklist = &gen.blacklist;
  config.seed = 1;
  config.retry.attempts = 3;
  config.retry.timeout_ms = 2000;
  config.threads = threads;
  config.max_in_flight = window;
  scan::Ipv4Scanner scanner(*gen.world, config);
  return scanner.scan(gen.universe);
}

TEST(EventCoreAcceptance, AsyncWindowBeatsSynchronousBaseline) {
  const scan::Ipv4ScanSummary open = lossy_scan(65536, 0);
  ASSERT_GT(open.retry_retransmissions, 0u);
  ASSERT_GT(open.virtual_scan_seconds, 0.0);

  // The synchronous baseline the event core replaced: every wire send
  // paced through the campaign bucket, then every retry wait charged
  // end-to-end (sum-of-waits — what a window of one serializes).
  scan::TokenBucket pace(25000.0, 128.0);
  const std::uint64_t sends = open.probed + open.retry_retransmissions;
  for (std::uint64_t i = 0; i < sends; ++i) pace.acquire();
  pace.advance(static_cast<double>(open.retry_wait_ms) / 1000.0);
  const double serial_seconds = pace.virtual_elapsed_seconds();

  EXPECT_LT(open.virtual_scan_seconds, serial_seconds)
      << "event-core makespan must beat the synchronous sum-of-waits";

  // Acceptance: the open window is at least twice as fast (in virtual
  // probes per second) as a fully synchronous window of one.
  const scan::Ipv4ScanSummary closed = lossy_scan(1, 0);
  EXPECT_EQ(closed.probed, open.probed);       // fates are window-invariant
  EXPECT_EQ(closed.noerror, open.noerror);
  EXPECT_LE(closed.peak_in_flight, 1u);
  EXPECT_GE(closed.virtual_scan_seconds, 2.0 * open.virtual_scan_seconds);
}

TEST(EventCoreAcceptance, VirtualTimeIsThreadCountInvariant) {
  const scan::Ipv4ScanSummary one = lossy_scan(4096, 1);
  const scan::Ipv4ScanSummary two = lossy_scan(4096, 2);
  const scan::Ipv4ScanSummary eight = lossy_scan(4096, 8);
  EXPECT_DOUBLE_EQ(one.virtual_scan_seconds, two.virtual_scan_seconds);
  EXPECT_DOUBLE_EQ(one.virtual_scan_seconds, eight.virtual_scan_seconds);
  EXPECT_EQ(one.peak_in_flight, two.peak_in_flight);
  EXPECT_EQ(one.peak_in_flight, eight.peak_in_flight);
  EXPECT_EQ(one.event_count, two.event_count);
  EXPECT_EQ(one.event_count, eight.event_count);
}

// Masked metrics reports — now including every event-core instrument —
// stay byte-identical across worker counts under a chaos profile (the
// DESIGN.md §8 contract the event core must not break).
std::string chaos_masked_report(unsigned threads) {
  worldgen::WorldGenConfig world_config;
  world_config.seed = 99;
  world_config.resolver_count = 400;
  world_config.loss_rate = 0.01;
  world_config.chaos.enabled = true;
  world_config.chaos.network_fraction = 0.6;
  world_config.chaos.episode_rate = 0.4;
  world_config.chaos.burst_loss = 0.3;
  world_config.chaos.base_loss = 0.02;
  world_config.chaos.bucket_minutes = 30;
  world_config.chaos.rate_limit_per_minute = 60.0;
  world_config.chaos.rate_limit_burst = 24.0;
  world_config.chaos.rate_limit_refused = true;
  world_config.chaos.truncate_rate = 0.04;
  world_config.chaos.corrupt_rate = 0.04;
  world_config.chaos.slow_episode_rate = 0.1;
  world_config.chaos.unreachable_episode_rate = 0.05;
  worldgen::GeneratedWorld gen = worldgen::generate_world(world_config);

  scan::Ipv4ScanConfig config;
  config.scanner_ip = gen.scanner_ip;
  config.zone = gen.scan_zone;
  config.blacklist = &gen.blacklist;
  config.seed = 42;
  config.spread_over_hours = 48.0;
  config.retry.attempts = 2;
  config.retry.timeout_ms = 2000;
  config.threads = threads;
  config.max_in_flight = 4096;
  scan::Ipv4Scanner scanner(*gen.world, config);
  scanner.scan(gen.universe);
  return gen.world->metrics().to_json(true);
}

TEST(EventCoreAcceptance, MaskedReportByteIdenticalAcrossThreads) {
  const std::string one = chaos_masked_report(1);
  ASSERT_NE(one.find("scan.ipv4.event.events"), std::string::npos);
  ASSERT_NE(one.find("scan.inflight"), std::string::npos);
  EXPECT_EQ(one, chaos_masked_report(2));
  EXPECT_EQ(one, chaos_masked_report(8));
}

}  // namespace
}  // namespace dnswild
