// The observability layer (src/obs/, DESIGN.md §8).
//
// Three contracts under test: the registry's counters/gauges/histograms
// survive concurrent hammering without losing increments (run these under
// -DDNSWILD_SANITIZE=thread to validate the lock-free hot path), spans
// nest and sequence deterministically, and a full pipeline run emits a
// JSON run report that is byte-identical across thread counts once the
// nondeterministic fields (wall times, shard shapes) are masked.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "scan/ipv4scan.h"
#include "worldgen/worldgen.h"

namespace dnswild {
namespace {

TEST(ObsRegistry, HandlesAreIdempotent) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("x.count");
  obs::Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);

  obs::Gauge& g = registry.gauge("x.gauge");
  g.set(-5);
  g.add(2);
  EXPECT_EQ(g.value(), -3);
  EXPECT_EQ(&g, &registry.gauge("x.gauge"));
}

TEST(ObsRegistry, ConcurrentCounterIncrementsAreLossless) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("hot.path");
  obs::Histogram& histogram =
      registry.histogram("hot.histogram", {10, 100, 1000});

  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, &histogram, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add();
        histogram.observe(t * 100 + (i & 7));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
}

TEST(ObsRegistry, GaugeTrackMaxKeepsHighWaterMark) {
  obs::Registry registry;
  obs::Gauge& gauge = registry.gauge("hot.peak");
  gauge.track_max(5);
  gauge.track_max(3);  // lower values never regress the mark
  EXPECT_EQ(gauge.value(), 5);
  gauge.track_max(12);
  EXPECT_EQ(gauge.value(), 12);

  // Concurrent hammering converges on the global maximum (the CAS loop
  // the event core's in-flight peak relies on).
  constexpr unsigned kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&gauge, t] {
      for (std::int64_t i = 0; i < 20000; ++i) {
        gauge.track_max(static_cast<std::int64_t>(t) * 20000 + i);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(gauge.value(), 7 * 20000 + 19999);
}

TEST(ObsHistogram, BucketsAreUpperInclusiveWithOverflow) {
  obs::Registry registry;
  obs::Histogram& histogram = registry.histogram("h", {10, 100});
  histogram.observe(5);
  histogram.observe(10);   // upper-inclusive: lands in the le=10 bucket
  histogram.observe(50);
  histogram.observe(1000);  // overflow bucket
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum(), 1065u);
  EXPECT_EQ(histogram.bucket(0), 2u);
  EXPECT_EQ(histogram.bucket(1), 1u);
  EXPECT_EQ(histogram.bucket(2), 1u);
}

TEST(ObsSpan, NestingRecordsParentAndDepth) {
  obs::Registry registry;
  {
    obs::Span outer(registry, "outer");
    outer.items_in(10);
    {
      obs::Span inner(registry, "inner");
      inner.items_in(5).items_out(2);
    }
    obs::Span sibling(registry, "sibling");
    sibling.close();
    outer.items_out(3);
  }
  const obs::Snapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.spans.size(), 3u);

  const obs::SpanRecord* outer = snapshot.find_span("outer");
  const obs::SpanRecord* inner = snapshot.find_span("inner");
  const obs::SpanRecord* sibling = snapshot.find_span("sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(sibling, nullptr);

  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(outer->parent, 0u);  // roots carry parent seq 0
  EXPECT_EQ(outer->items_in, 10);
  EXPECT_EQ(outer->items_out, 3);

  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(inner->parent, outer->seq);
  EXPECT_EQ(sibling->depth, 1u);
  EXPECT_EQ(sibling->parent, outer->seq);

  // Seq numbers are assigned at open time, in program order.
  EXPECT_LT(outer->seq, inner->seq);
  EXPECT_LT(inner->seq, sibling->seq);
}

TEST(ObsSnapshot, MaskingZeroesOnlyNondeterministicValues) {
  obs::Registry registry;
  registry.counter("stable.count").add(42);
  registry.counter("wobbly.count", obs::Tag::kNondeterministic).add(7);
  registry.histogram("wobbly.hist", {10}, obs::Tag::kNondeterministic)
      .observe(3);
  { obs::Span span(registry, "work"); }

  const std::string masked = registry.to_json(/*mask_nondeterministic=*/true);
  EXPECT_NE(masked.find("\"name\": \"stable.count\", \"value\": 42"),
            std::string::npos);
  EXPECT_NE(masked.find("\"name\": \"wobbly.count\", \"value\": 0"),
            std::string::npos);
  EXPECT_NE(masked.find("\"wall_ms\": 0.000"), std::string::npos);

  const std::string unmasked = registry.to_json(false);
  EXPECT_NE(unmasked.find("\"name\": \"wobbly.count\", \"value\": 7"),
            std::string::npos);
}

TEST(ObsSnapshot, JsonIsDeterministicAcrossSnapshots) {
  obs::Registry registry;
  registry.counter("b.second").add(2);
  registry.counter("a.first").add(1);
  registry.gauge("z.gauge").set(9);
  const std::string first = registry.to_json(true);
  const std::string second = registry.to_json(true);
  EXPECT_EQ(first, second);
  // Name-sorted key order regardless of registration order.
  EXPECT_LT(first.find("a.first"), first.find("b.second"));
}

// --- the acceptance criterion: a full run report, thread-invariant -------

core::StudyReport pipeline_run_at(unsigned threads) {
  worldgen::WorldGenConfig config;
  config.seed = 91;
  config.resolver_count = 300;
  worldgen::GeneratedWorld gen = worldgen::generate_world(config);

  scan::Ipv4ScanConfig scan_config;
  scan_config.scanner_ip = gen.scanner_ip;
  scan_config.zone = gen.scan_zone;
  scan_config.blacklist = &gen.blacklist;
  scan_config.seed = 3;
  scan_config.threads = threads;
  scan::Ipv4Scanner scanner(*gen.world, scan_config);
  const auto summary = scanner.scan(gen.universe);

  core::PipelineConfig pipeline_config;
  pipeline_config.scanner_ip = gen.scanner_ip;
  pipeline_config.vantage_ip = gen.vantage_ip;
  pipeline_config.seed = 5;
  pipeline_config.scan_threads = threads;
  pipeline_config.classifier.threads = threads;
  core::Pipeline pipeline(*gen.world, *gen.registry, pipeline_config);
  return pipeline.run(summary.noerror_targets, gen.domains);
}

TEST(ObsPipeline, RunReportCoversAllStagesAndTraffic) {
  const core::StudyReport report = pipeline_run_at(2);
  const obs::Snapshot& metrics = report.metrics;

  // One span per Fig. 3 stage, nested under the pipeline root.
  const obs::SpanRecord* root = metrics.find_span("pipeline.run");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->depth, 0u);
  for (const char* stage :
       {"stage.scan", "stage.domain_scan", "stage.prefilter",
        "stage.acquisition", "stage.clustering", "stage.labeling"}) {
    const obs::SpanRecord* span = metrics.find_span(stage);
    ASSERT_NE(span, nullptr) << stage;
    EXPECT_EQ(span->depth, 1u) << stage;
    EXPECT_EQ(span->parent, root->seq) << stage;
    EXPECT_GE(span->items_in, 0) << stage;
    EXPECT_GE(span->items_out, 0) << stage;
  }
  // Stage arithmetic matches the report the stages produced.
  EXPECT_EQ(metrics.find_span("stage.domain_scan")->items_out,
            static_cast<std::int64_t>(report.records.size()));
  EXPECT_EQ(metrics.find_span("stage.prefilter")->items_out,
            static_cast<std::int64_t>(report.prefilter_stats.unknown));
  EXPECT_EQ(metrics.find_span("stage.acquisition")->items_out,
            static_cast<std::int64_t>(report.pages.size()));

  // The traffic plane recorded into the same registry.
  EXPECT_GT(metrics.counter_value("net.udp.sent"), 0u);
  EXPECT_GT(metrics.counter_value("net.udp.delivered"), 0u);
  EXPECT_GT(metrics.counter_value("scan.ipv4.probed"), 0u);
  EXPECT_GT(metrics.counter_value("scan.domain.probes"), 0u);
  EXPECT_GT(metrics.counter_value("http.fetch.pages"), 0u);
}

TEST(ObsPipeline, MaskedRunReportIsThreadCountInvariant) {
  const std::string at1 = pipeline_run_at(1).metrics.to_json(true);
  const std::string at2 = pipeline_run_at(2).metrics.to_json(true);
  const std::string at8 = pipeline_run_at(8).metrics.to_json(true);
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
}

TEST(ObsSnapshot, DumpJsonWritesTheReport) {
  obs::Registry registry;
  registry.counter("c").add(1);
  const std::string path = ::testing::TempDir() + "dnswild_obs_report.json";
  ASSERT_TRUE(registry.dump_json(path));
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char buffer[4096];
  const std::size_t read = std::fread(buffer, 1, sizeof buffer - 1, file);
  std::fclose(file);
  buffer[read] = '\0';
  const std::string contents(buffer);
  EXPECT_NE(contents.find("\"schema\": \"dnswild.metrics.v2\""),
            std::string::npos);
  EXPECT_NE(contents.find("\"name\": \"c\", \"value\": 1"),
            std::string::npos);
}

}  // namespace
}  // namespace dnswild
