#include "scan/snoop_probe.h"

#include <gtest/gtest.h>

#include "fixtures.h"

namespace dnswild::scan {
namespace {

using test::make_mini_world;
using test::MiniWorld;

TEST(SnoopProber, CollectsHourlySeriesForEachTld) {
  MiniWorld mini = make_mini_world();
  resolver::ResolverConfig active;
  active.seed = 1;
  active.snoop.profile = resolver::SnoopProfile::kActiveFast;
  mini.add_resolver(net::Ipv4(1, 0, 0, 10), active);

  SnoopCampaignConfig config;
  config.scanner_ip = mini.scanner_ip;
  config.seed = 5;
  config.interval_minutes = 60;
  config.duration_hours = 36;
  SnoopProber prober(*mini.world, config);
  const auto series =
      prober.run({net::Ipv4(1, 0, 0, 10)}, {"com", "de"});
  ASSERT_EQ(series.size(), 2u);  // one per (resolver, tld)
  for (const auto& entry : series) {
    EXPECT_EQ(entry.resolver_index, 0u);
    EXPECT_EQ(entry.samples.size(), 37u);  // inclusive hourly samples
    for (const auto& sample : entry.samples) {
      EXPECT_TRUE(sample.responded);
      EXPECT_TRUE(sample.cached);
      EXPECT_LE(sample.remaining_ttl, 21600u);
    }
  }
  // The campaign advanced the world clock by 36 hours.
  EXPECT_EQ(mini.world->clock().minutes(), 36 * 60);
}

TEST(SnoopProber, EmptyCacheProfileAnswersWithoutRecords) {
  MiniWorld mini = make_mini_world();
  resolver::ResolverConfig empty;
  empty.seed = 1;
  empty.snoop.profile = resolver::SnoopProfile::kNoCache;
  mini.add_resolver(net::Ipv4(1, 0, 0, 10), empty);

  SnoopCampaignConfig config;
  config.scanner_ip = mini.scanner_ip;
  config.duration_hours = 2;
  SnoopProber prober(*mini.world, config);
  const auto series = prober.run({net::Ipv4(1, 0, 0, 10)}, {"com"});
  ASSERT_EQ(series.size(), 1u);
  for (const auto& sample : series[0].samples) {
    EXPECT_TRUE(sample.responded);
    EXPECT_FALSE(sample.cached);
  }
}

TEST(SnoopProber, UnreachableHostNeverResponds) {
  MiniWorld mini = make_mini_world();
  SnoopCampaignConfig config;
  config.scanner_ip = mini.scanner_ip;
  config.duration_hours = 2;
  SnoopProber prober(*mini.world, config);
  const auto series = prober.run({net::Ipv4(1, 0, 0, 99)}, {"com"});
  for (const auto& sample : series[0].samples) {
    EXPECT_FALSE(sample.responded);
  }
}

TEST(SnoopProber, SingleThenSilentAcrossCampaign) {
  MiniWorld mini = make_mini_world();
  resolver::ResolverConfig single;
  single.seed = 1;
  single.snoop.profile = resolver::SnoopProfile::kSingleThenSilent;
  mini.add_resolver(net::Ipv4(1, 0, 0, 10), single);
  SnoopCampaignConfig config;
  config.scanner_ip = mini.scanner_ip;
  config.duration_hours = 5;
  SnoopProber prober(*mini.world, config);
  const auto series = prober.run({net::Ipv4(1, 0, 0, 10)}, {"com"});
  int responded = 0;
  for (const auto& sample : series[0].samples) {
    if (sample.responded) ++responded;
  }
  EXPECT_EQ(responded, 1);
  EXPECT_TRUE(series[0].samples.front().responded);
}

}  // namespace
}  // namespace dnswild::scan
