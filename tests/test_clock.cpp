#include "net/clock.h"

#include <gtest/gtest.h>

namespace dnswild::net {
namespace {

TEST(CivilDate, EpochDay) {
  EXPECT_EQ(days_from_civil({1970, 1, 1}), 0);
  EXPECT_EQ(days_from_civil({1970, 1, 2}), 1);
  EXPECT_EQ(days_from_civil({1969, 12, 31}), -1);
}

TEST(CivilDate, KnownDates) {
  EXPECT_EQ(days_from_civil({2000, 3, 1}), 11017);
  EXPECT_EQ(days_from_civil({2014, 1, 31}), 16101);
}

TEST(CivilDate, RoundTripSweep) {
  // Sweep three years around the study window, including the 2016 leap day.
  for (std::int64_t day = days_from_civil({2013, 12, 1});
       day <= days_from_civil({2016, 3, 2}); ++day) {
    const CivilDate date = civil_from_days(day);
    EXPECT_EQ(days_from_civil(date), day);
    EXPECT_GE(date.month, 1);
    EXPECT_LE(date.month, 12);
    EXPECT_GE(date.day, 1);
    EXPECT_LE(date.day, 31);
  }
}

TEST(CivilDate, LeapYearHandling) {
  const CivilDate feb29 = civil_from_days(days_from_civil({2016, 2, 29}));
  EXPECT_EQ(feb29.year, 2016);
  EXPECT_EQ(feb29.month, 2);
  EXPECT_EQ(feb29.day, 29);
  // 2015 is not a leap year: Feb 28 + 1 day = Mar 1.
  const CivilDate mar1 =
      civil_from_days(days_from_civil({2015, 2, 28}) + 1);
  EXPECT_EQ(mar1.month, 3);
  EXPECT_EQ(mar1.day, 1);
}

TEST(CivilDate, Formatting) {
  EXPECT_EQ((CivilDate{2014, 1, 31}).to_string(), "2014/01/31");
  EXPECT_EQ((CivilDate{2015, 12, 5}).to_string(), "2015/12/05");
}

TEST(SimClock, StartsAtStudyEpoch) {
  SimClock clock;
  EXPECT_EQ(clock.date().to_string(), "2014/01/31");
  EXPECT_EQ(clock.minutes(), 0);
}

TEST(SimClock, WeeklyDatesMatchFigureOne) {
  // Fig. 1's x-axis labels step in 3-week increments from 2014/01/31.
  SimClock clock;
  clock.advance_days(21);
  EXPECT_EQ(clock.date().to_string(), "2014/02/21");
  clock.advance_days(21);
  EXPECT_EQ(clock.date().to_string(), "2014/03/14");
}

TEST(SimClock, LastScanDate) {
  // Week 54 (0-based) of the campaign lands on 2015/02/13 (Fig. 1).
  SimClock clock;
  clock.advance_days(54 * 7);
  EXPECT_EQ(clock.date().to_string(), "2015/02/13");
}

TEST(SimClock, MinutesAndDays) {
  SimClock clock;
  clock.advance_minutes(90);
  EXPECT_DOUBLE_EQ(clock.days(), 0.0625);
  EXPECT_EQ(clock.whole_days(), 0);
  clock.advance_days(2);
  EXPECT_EQ(clock.whole_days(), 2);
  EXPECT_EQ(clock.weeks(), 0);
  clock.advance_days(5);
  EXPECT_EQ(clock.weeks(), 1);
}

}  // namespace
}  // namespace dnswild::net
