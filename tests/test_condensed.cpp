// CondensedMatrix edge cases and index round-trip properties.
//
// The sharded fill and the LSH group walks trust offset()/cell() to be
// exact inverses over the flat range, and degenerate sizes (n = 0, n = 1 —
// both produced by real pipelines when a scan yields one unique page or
// none) must not underflow the binary search.
#include <gtest/gtest.h>

#include "cluster/condensed.h"
#include "util/rng.h"

namespace dnswild {
namespace {

TEST(CondensedMatrix, EmptyMatrixHasNoCells) {
  cluster::CondensedMatrix matrix(0);
  EXPECT_EQ(matrix.items(), 0u);
  EXPECT_EQ(matrix.pair_count(), 0u);
  EXPECT_EQ(matrix.bytes(), 0u);
  EXPECT_EQ(cluster::CondensedMatrix::pair_count(0), 0u);
  // cell() on a degenerate matrix must not wrap `items_ - 2`.
  const auto [row, col] = matrix.cell(0);
  EXPECT_EQ(row, 0u);
  EXPECT_EQ(col, 0u);
}

TEST(CondensedMatrix, SingleItemHasNoCells) {
  cluster::CondensedMatrix matrix(1);
  EXPECT_EQ(matrix.items(), 1u);
  EXPECT_EQ(matrix.pair_count(), 0u);
  EXPECT_EQ(matrix.bytes(), 0u);
  EXPECT_EQ(cluster::CondensedMatrix::pair_count(1), 0u);
  const auto [row, col] = matrix.cell(0);
  EXPECT_EQ(row, 0u);
  EXPECT_EQ(col, 0u);
  // The symmetric read still has its zero diagonal.
  EXPECT_EQ(matrix.at(0, 0), 0.0);
}

TEST(CondensedMatrix, DefaultConstructedIsEmpty) {
  cluster::CondensedMatrix matrix;
  EXPECT_EQ(matrix.items(), 0u);
  EXPECT_EQ(matrix.pair_count(), 0u);
}

TEST(CondensedMatrix, OffsetCellRoundTripExhaustiveSmall) {
  for (const std::size_t n : {2u, 3u, 4u, 7u, 33u}) {
    cluster::CondensedMatrix matrix(n);
    std::size_t flat = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j, ++flat) {
        ASSERT_EQ(matrix.offset(i, j), flat) << "n=" << n;
        const auto [row, col] = matrix.cell(flat);
        ASSERT_EQ(row, i) << "n=" << n << " flat=" << flat;
        ASSERT_EQ(col, j) << "n=" << n << " flat=" << flat;
      }
    }
    ASSERT_EQ(flat, matrix.pair_count());
  }
}

TEST(CondensedMatrix, OffsetCellRoundTripRandomLarge) {
  // Property check at sizes where exhaustion is too slow: cell() must
  // invert offset() for hash-picked flats across the whole range.
  util::Rng rng(2015);
  for (const std::size_t n : {100u, 999u, 5000u}) {
    cluster::CondensedMatrix matrix(n);
    const std::size_t cells = matrix.pair_count();
    ASSERT_EQ(cells, n * (n - 1) / 2);
    for (int trial = 0; trial < 500; ++trial) {
      const std::size_t flat = static_cast<std::size_t>(rng.below(cells));
      const auto [row, col] = matrix.cell(flat);
      ASSERT_LT(row, col);
      ASSERT_LT(col, n);
      ASSERT_EQ(matrix.offset(row, col), flat) << "n=" << n;
    }
    // Boundary cells: the first and last flat indices of the triangle.
    const auto first = matrix.cell(0);
    EXPECT_EQ(first.first, 0u);
    EXPECT_EQ(first.second, 1u);
    const auto last = matrix.cell(cells - 1);
    EXPECT_EQ(last.first, n - 2);
    EXPECT_EQ(last.second, n - 1);
  }
}

TEST(CondensedMatrix, SymmetricReadsAfterRandomWrites) {
  util::Rng rng(7);
  const std::size_t n = 23;
  cluster::CondensedMatrix matrix(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      // Writes through the (j, i) orientation must land in cell (i, j).
      matrix.set(j, i, rng.uniform());
    }
  }
  for (std::size_t flat = 0; flat < matrix.pair_count(); ++flat) {
    const auto [i, j] = matrix.cell(flat);
    EXPECT_EQ(matrix.at(i, j), matrix.at(j, i));
    EXPECT_EQ(matrix.at(i, j), matrix.flat_at(flat));
  }
}

}  // namespace
}  // namespace dnswild
