#include "scan/ipv4scan.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "fixtures.h"

namespace dnswild::scan {
namespace {

using test::make_mini_world;
using test::MiniWorld;

Ipv4ScanConfig scan_config(const MiniWorld& mini, std::uint64_t seed = 7) {
  Ipv4ScanConfig config;
  config.scanner_ip = mini.scanner_ip;
  config.zone = mini.scan_zone;
  config.seed = seed;
  return config;
}

TEST(Ipv4Scanner, FindsPlantedResolversByStatus) {
  MiniWorld mini = make_mini_world();
  resolver::ResolverConfig honest;
  honest.seed = 1;
  mini.add_resolver(net::Ipv4(1, 0, 0, 10), honest);
  mini.add_resolver(net::Ipv4(1, 0, 0, 11), honest);

  resolver::ResolverConfig refused;
  refused.seed = 2;
  refused.behavior.base = resolver::BasePolicy::kRefuseAll;
  mini.add_resolver(net::Ipv4(1, 0, 0, 12), refused);

  resolver::ResolverConfig servfail;
  servfail.seed = 3;
  servfail.behavior.base = resolver::BasePolicy::kServFailAll;
  mini.add_resolver(net::Ipv4(1, 0, 0, 13), servfail);

  Ipv4Scanner scanner(*mini.world, scan_config(mini));
  const auto summary =
      scanner.scan({net::Cidr(net::Ipv4(1, 0, 0, 0), 24)});

  EXPECT_EQ(summary.probed, 256u);
  EXPECT_EQ(summary.responses, 4u);
  EXPECT_EQ(summary.noerror, 2u);
  EXPECT_EQ(summary.refused, 1u);
  EXPECT_EQ(summary.servfail, 1u);
  EXPECT_EQ(summary.noerror_targets.size(), 2u);
  EXPECT_TRUE(std::find(summary.noerror_targets.begin(),
                        summary.noerror_targets.end(),
                        net::Ipv4(1, 0, 0, 10)) !=
              summary.noerror_targets.end());
}

TEST(Ipv4Scanner, EmptyAnswerStillCountsAsNoError) {
  // §2.2: NOERROR counts hosts with that status flag regardless of content.
  MiniWorld mini = make_mini_world();
  resolver::ResolverConfig empty;
  empty.seed = 1;
  empty.behavior.base = resolver::BasePolicy::kEmptyAll;
  mini.add_resolver(net::Ipv4(1, 0, 0, 10), empty);
  Ipv4Scanner scanner(*mini.world, scan_config(mini));
  const auto summary =
      scanner.scan({net::Cidr(net::Ipv4(1, 0, 0, 0), 28)});
  EXPECT_EQ(summary.noerror, 1u);
}

TEST(Ipv4Scanner, ReservedSpaceSkipped) {
  MiniWorld mini = make_mini_world();
  Ipv4Scanner scanner(*mini.world, scan_config(mini));
  const auto summary =
      scanner.scan({net::Cidr(net::Ipv4(192, 168, 1, 0), 24)});
  EXPECT_EQ(summary.probed, 0u);
  EXPECT_EQ(summary.skipped_reserved, 256u);
}

TEST(Ipv4Scanner, BlacklistRespected) {
  MiniWorld mini = make_mini_world();
  resolver::ResolverConfig honest;
  honest.seed = 1;
  mini.add_resolver(net::Ipv4(1, 0, 0, 10), honest);

  Blacklist blacklist;
  blacklist.add_range(net::Cidr(net::Ipv4(1, 0, 0, 0), 28));
  auto config = scan_config(mini);
  config.blacklist = &blacklist;
  Ipv4Scanner scanner(*mini.world, config);
  const auto summary =
      scanner.scan({net::Cidr(net::Ipv4(1, 0, 0, 0), 24)});
  EXPECT_EQ(summary.skipped_blacklist, 16u);
  EXPECT_EQ(summary.noerror, 0u);  // the resolver sits in the skipped /28
}

TEST(Ipv4Scanner, MultihomedForwarderAttributedToTarget) {
  MiniWorld mini = make_mini_world();
  // Backend resolver, owned by the test (outlives every forwarder call).
  resolver::ResolverConfig backend_config;
  backend_config.seed = 1;
  backend_config.registry = mini.registry.get();
  backend_config.clock = &mini.world->clock();
  resolver::OpenResolverService backend(backend_config);

  // Forwarder at 1.0.0.20 answering from 2.0.0.99.
  net::HostConfig host_config;
  host_config.attachment.ip = net::Ipv4(1, 0, 0, 20);
  const net::HostId id = mini.world->add_host(host_config);
  mini.world->set_udp_service(
      id, 53, std::make_unique<resolver::ForwarderService>(
                  &backend, net::Ipv4(2, 0, 0, 99)));

  Ipv4Scanner scanner(*mini.world, scan_config(mini));
  const auto summary =
      scanner.scan({net::Cidr(net::Ipv4(1, 0, 0, 0), 24)});
  EXPECT_EQ(summary.noerror, 1u);
  EXPECT_EQ(summary.multihomed, 1u);
  // Attribution via the hex-IP name: the *target* is recorded.
  ASSERT_EQ(summary.noerror_targets.size(), 1u);
  EXPECT_EQ(summary.noerror_targets[0], net::Ipv4(1, 0, 0, 20));
}

TEST(Ipv4Scanner, ProbeTargetsReprobesGivenList) {
  MiniWorld mini = make_mini_world();
  resolver::ResolverConfig honest;
  honest.seed = 1;
  mini.add_resolver(net::Ipv4(1, 0, 0, 10), honest);
  Ipv4Scanner scanner(*mini.world, scan_config(mini));
  const auto summary = scanner.probe_targets(
      {net::Ipv4(1, 0, 0, 10), net::Ipv4(1, 0, 0, 77)});
  EXPECT_EQ(summary.probed, 2u);
  EXPECT_EQ(summary.noerror, 1u);
}

TEST(Ipv4Scanner, RetransmissionsRecoverLostProbes) {
  MiniWorld mini = make_mini_world(9);
  resolver::ResolverConfig honest;
  honest.seed = 1;
  for (int i = 10; i < 110; ++i) {
    mini.add_resolver(net::Ipv4(1, 0, 0, static_cast<std::uint8_t>(i)),
                      honest);
  }
  mini.world->set_loss_rate(0.3);

  auto no_retry = scan_config(mini, 5);
  Ipv4Scanner plain(*mini.world, no_retry);
  const auto lossy = plain.scan({net::Cidr(net::Ipv4(1, 0, 0, 0), 24)});

  auto with_retry = scan_config(mini, 5);
  with_retry.retry.attempts = 4;
  Ipv4Scanner retrying(*mini.world, with_retry);
  const auto recovered =
      retrying.scan({net::Cidr(net::Ipv4(1, 0, 0, 0), 24)});

  // ~49% success without retries vs ~95%+ with four retransmissions.
  EXPECT_LT(lossy.noerror, 70u);
  EXPECT_GT(recovered.noerror, 85u);
  EXPECT_GT(recovered.noerror, lossy.noerror);
}

TEST(Ipv4Scanner, SobolOrderFindsTheSamePopulation) {
  // Scan-order ablation invariant: per-probe fates are pure functions of
  // the probe identity, so walking the universe in Sobol order discovers
  // exactly the LFSR order's responder population — only the discovery
  // curve over time differs.
  const auto run = [](ScanOrder order) {
    MiniWorld mini = make_mini_world(5);
    resolver::ResolverConfig honest;
    honest.seed = 1;
    for (int i = 10; i < 40; ++i) {
      mini.add_resolver(net::Ipv4(1, 0, 0, static_cast<std::uint8_t>(i)),
                        honest);
    }
    Ipv4ScanConfig config = scan_config(mini, 13);
    config.order = order;
    Ipv4Scanner scanner(*mini.world, config);
    return scanner.scan({net::Cidr(net::Ipv4(1, 0, 0, 0), 24)});
  };
  auto lfsr = run(ScanOrder::kLfsr);
  auto sobol = run(ScanOrder::kSobol);
  EXPECT_EQ(lfsr.probed, sobol.probed);
  EXPECT_EQ(lfsr.noerror, sobol.noerror);
  std::sort(lfsr.noerror_targets.begin(), lfsr.noerror_targets.end());
  std::sort(sobol.noerror_targets.begin(), sobol.noerror_targets.end());
  EXPECT_EQ(lfsr.noerror_targets, sobol.noerror_targets);
}

TEST(Ipv4Scanner, DeterministicUnderSeed) {
  const auto run = [] {
    MiniWorld mini = make_mini_world(3);
    resolver::ResolverConfig honest;
    honest.seed = 1;
    for (int i = 10; i < 30; ++i) {
      mini.add_resolver(net::Ipv4(1, 0, 0, static_cast<std::uint8_t>(i)),
                        honest);
    }
    Ipv4Scanner scanner(*mini.world, scan_config(mini, 55));
    return scanner.scan({net::Cidr(net::Ipv4(1, 0, 0, 0), 24)});
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.noerror_targets, b.noerror_targets);
  EXPECT_EQ(a.responses, b.responses);
}

}  // namespace
}  // namespace dnswild::scan
