// LSH pre-bucketing: determinism, thread invariance, candidate recall,
// incremental assignment, and the exact-vs-LSH quality gate.
//
// Contracts under test (DESIGN.md §10):
//  * page_signature is a pure seeded function: same (body, features, seed)
//    gives identical sketches, a different seed decorrelates them.
//  * lsh_cluster is byte-identical for every thread count — labels,
//    exemplars, signatures, and stats all match, because every parallel
//    stage is single-writer-per-slot and all ordering comes from
//    deterministic keys. Build with -DDNSWILD_SANITIZE=thread to check the
//    fan-out under TSan.
//  * Candidate recall: nearly all true near pairs (exact page_distance at
//    or below the merge cut) land in one candidate group, and the stitched
//    clustering puts them in one final cluster.
//  * ClusterModel::assign honours its contract: any assignment is to a
//    cluster whose exemplar lies within the cut, and assigning a cluster's
//    own exemplar returns that cluster.
//  * Quality gate: classify_responses in kLsh mode reproduces the exact
//    pipeline's per-tuple Table 5 labels bit-for-bit on the paper-scale
//    fixture (ISSUE acceptance criterion).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "cluster/distance.h"
#include "cluster/lsh.h"
#include "cluster/signature.h"
#include "core/classify.h"
#include "http/factory.h"
#include "http/html.h"
#include "scan/executor.h"
#include "util/hash.h"

namespace dnswild {
namespace {

// Same content mix as test_parallel_cluster.cpp: the page families the
// study's Table 5 clusters (legitimate sites, censorship, blocking,
// parking, logins, errors, search).
std::vector<std::string> make_corpus(std::size_t count) {
  std::vector<std::string> corpus;
  corpus.reserve(count);
  const http::SiteCategory categories[] = {
      http::SiteCategory::kAlexa,   http::SiteCategory::kBanking,
      http::SiteCategory::kAdult,   http::SiteCategory::kGambling,
      http::SiteCategory::kMail,    http::SiteCategory::kFilesharing,
  };
  std::size_t v = 0;
  while (corpus.size() < count) {
    switch (v % 7) {
      case 0:
        corpus.push_back(http::legit_site(
            "site" + std::to_string(v) + ".example",
            categories[v % (sizeof categories / sizeof categories[0])], v,
            1));
        break;
      case 1: corpus.push_back(http::censorship_page("TR", v)); break;
      case 2:
        corpus.push_back(http::blocking_page(v % 3, v, "blocked.example"));
        break;
      case 3:
        corpus.push_back(
            http::parking_page("lot" + std::to_string(v) + ".example", v));
        break;
      case 4: corpus.push_back(http::router_login(v % 4, v)); break;
      case 5:
        corpus.push_back(
            http::error_page(static_cast<int>(400 + v % 100), v));
        break;
      case 6: corpus.push_back(http::search_page(v, "q.example", false)); break;
    }
    ++v;
  }
  return corpus;
}

std::vector<http::PageFeatures> corpus_features(
    const std::vector<std::string>& corpus) {
  std::vector<http::PageFeatures> features;
  features.reserve(corpus.size());
  for (const std::string& body : corpus) {
    features.push_back(http::extract_features(body));
  }
  return features;
}

cluster::BodyFn body_fn(const std::vector<std::string>& corpus) {
  return [&corpus](std::size_t i) { return std::string_view(corpus[i]); };
}

TEST(PageSignature, DeterministicAndSeedSensitive) {
  const auto corpus = make_corpus(8);
  const auto features = corpus_features(corpus);
  cluster::SignatureConfig config;
  config.seed = 42;

  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const auto first = cluster::page_signature(corpus[i], features[i], config);
    const auto second = cluster::page_signature(corpus[i], features[i], config);
    ASSERT_EQ(first.minhash.size(), config.minhash_slots);
    EXPECT_TRUE(first == second);

    cluster::SignatureConfig reseeded = config;
    reseeded.seed = 43;
    const auto other =
        cluster::page_signature(corpus[i], features[i], reseeded);
    // A different permutation must not reproduce the sketch.
    EXPECT_FALSE(first.minhash == other.minhash);
  }
}

TEST(PageSignature, EmptyBodiesShareOneSketch) {
  const auto features = http::extract_features("");
  cluster::SignatureConfig config;
  const auto a = cluster::page_signature("", features, config);
  const auto b = cluster::page_signature("", features, config);
  EXPECT_TRUE(a == b);
  // All slots carry the same sentinel: no shingles, fully densified.
  for (const std::uint64_t slot : a.minhash) {
    EXPECT_EQ(slot, a.minhash.front());
  }
}

TEST(PageSignature, IdenticalPagesShareAllBandKeys) {
  const auto corpus = make_corpus(4);
  const auto features = corpus_features(corpus);
  cluster::LshOptions options;
  const auto signature =
      cluster::page_signature(corpus[0], features[0], options.signature);
  const auto copy =
      cluster::page_signature(corpus[0], features[0], options.signature);
  EXPECT_EQ(cluster::band_keys(signature, options),
            cluster::band_keys(copy, options));
  ASSERT_EQ(cluster::band_keys(signature, options).size(),
            options.bands + options.simhash_bands);
}

TEST(PageSignature, HammingDistance) {
  EXPECT_EQ(cluster::simhash_hamming(0, 0), 0u);
  EXPECT_EQ(cluster::simhash_hamming(0, ~0ULL), 64u);
  EXPECT_EQ(cluster::simhash_hamming(0b1011, 0b0001), 2u);
}

TEST(Lsh, ByteIdenticalAcrossThreadCounts) {
  const auto corpus = make_corpus(72);
  const auto features = corpus_features(corpus);

  cluster::LshOptions baseline_options;
  baseline_options.threads = 1;
  const auto baseline =
      cluster::lsh_cluster(features, body_fn(corpus), baseline_options);
  ASSERT_EQ(baseline.labels.size(), corpus.size());
  ASSERT_GT(baseline.clusters, 1u);
  ASSERT_EQ(baseline.cluster_exemplar.size(), baseline.clusters);
  ASSERT_EQ(baseline.stats.items, corpus.size());
  EXPECT_EQ(baseline.stats.full_pairs,
            corpus.size() * (corpus.size() - 1) / 2);
  EXPECT_LE(baseline.stats.candidate_pairs, baseline.stats.full_pairs);

  for (const unsigned threads : {2u, 8u}) {
    cluster::LshOptions options = baseline_options;
    options.threads = threads;
    const auto result =
        cluster::lsh_cluster(features, body_fn(corpus), options);
    EXPECT_EQ(result.labels, baseline.labels) << "threads " << threads;
    EXPECT_EQ(result.cluster_exemplar, baseline.cluster_exemplar);
    EXPECT_EQ(result.clusters, baseline.clusters);
    ASSERT_EQ(result.signatures.size(), baseline.signatures.size());
    for (std::size_t i = 0; i < result.signatures.size(); ++i) {
      EXPECT_TRUE(result.signatures[i] == baseline.signatures[i]);
    }
    EXPECT_EQ(result.stats.buckets, baseline.stats.buckets);
    EXPECT_EQ(result.stats.groups, baseline.stats.groups);
    EXPECT_EQ(result.stats.largest_group, baseline.stats.largest_group);
    EXPECT_EQ(result.stats.candidate_pairs, baseline.stats.candidate_pairs);
    EXPECT_EQ(result.stats.stitch_exemplars, baseline.stats.stitch_exemplars);
    EXPECT_EQ(result.stats.stitch_merges, baseline.stats.stitch_merges);
  }

  // A shared executor (the pipeline's pool) must match the owned pools.
  scan::ParallelExecutor executor(4);
  cluster::LshOptions shared = baseline_options;
  shared.executor = &executor;
  const auto pooled = cluster::lsh_cluster(features, body_fn(corpus), shared);
  EXPECT_EQ(pooled.labels, baseline.labels);
  EXPECT_EQ(pooled.cluster_exemplar, baseline.cluster_exemplar);
}

TEST(Lsh, RerunWithSameSeedIsIdenticalDifferentSeedStillClusters) {
  const auto corpus = make_corpus(40);
  const auto features = corpus_features(corpus);
  cluster::LshOptions options;
  options.signature.seed = 7;
  const auto first = cluster::lsh_cluster(features, body_fn(corpus), options);
  const auto second = cluster::lsh_cluster(features, body_fn(corpus), options);
  EXPECT_EQ(first.labels, second.labels);
  EXPECT_EQ(first.stats.candidate_pairs, second.stats.candidate_pairs);

  // A different seed rotates every bucket key; clustering quality holds
  // (the families still collapse) even though the bucket geometry moved.
  cluster::LshOptions reseeded = options;
  reseeded.signature.seed = 8;
  const auto other = cluster::lsh_cluster(features, body_fn(corpus), reseeded);
  EXPECT_EQ(other.labels.size(), first.labels.size());
  EXPECT_GT(other.clusters, 1u);
  EXPECT_LT(other.clusters, corpus.size());
}

// Mirror of lsh_cluster's bucketing: union items sharing any band key and
// return per-item component labels. Used to measure candidate recall
// directly (the clustering result additionally benefits from stitching).
std::vector<int> candidate_components(
    const std::vector<cluster::PageSignature>& signatures,
    const cluster::LshOptions& options) {
  std::vector<int> parent(signatures.size());
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&parent](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  std::map<std::uint64_t, int> first_in_bucket;
  for (std::size_t i = 0; i < signatures.size(); ++i) {
    for (const std::uint64_t key :
         cluster::band_keys(signatures[i], options)) {
      const auto [it, inserted] =
          first_in_bucket.emplace(key, static_cast<int>(i));
      if (!inserted) {
        const int a = find(it->second);
        const int b = find(static_cast<int>(i));
        if (a != b) parent[static_cast<std::size_t>(std::max(a, b))] =
            std::min(a, b);
      }
    }
  }
  std::vector<int> component(signatures.size());
  for (std::size_t i = 0; i < signatures.size(); ++i) {
    component[i] = find(static_cast<int>(i));
  }
  return component;
}

TEST(Lsh, NearPairRecall) {
  const auto corpus = make_corpus(120);
  const auto features = corpus_features(corpus);
  cluster::LshOptions options;
  const auto clustering =
      cluster::lsh_cluster(features, body_fn(corpus), options);
  const auto component =
      candidate_components(clustering.signatures, options);

  std::size_t near_pairs = 0;
  std::size_t candidate_hits = 0;  // near pair in one candidate group
  std::size_t cluster_hits = 0;    // near pair in one final cluster
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    for (std::size_t j = i + 1; j < corpus.size(); ++j) {
      if (cluster::page_distance(features[i], features[j]) > options.cut) {
        continue;
      }
      ++near_pairs;
      if (component[i] == component[j]) ++candidate_hits;
      if (clustering.labels[i] == clustering.labels[j]) ++cluster_hits;
    }
  }
  ASSERT_GT(near_pairs, 50u) << "fixture lost its near-duplicate families";
  // Banding (16x4 MinHash bands + 4 SimHash slices) must surface nearly
  // every true near pair as a candidate, and stitching may only help.
  EXPECT_GE(static_cast<double>(candidate_hits),
            0.85 * static_cast<double>(near_pairs))
      << candidate_hits << "/" << near_pairs << " near pairs were candidates";
  EXPECT_GE(static_cast<double>(cluster_hits),
            0.85 * static_cast<double>(near_pairs))
      << cluster_hits << "/" << near_pairs << " near pairs clustered together";

  // The sampled estimator agrees that few near pairs were missed.
  if (clustering.stats.missed_pair_estimate >= 0.0) {
    EXPECT_LE(clustering.stats.missed_pair_estimate, 0.15);
  }
}

TEST(Lsh, DegenerateInputs) {
  const std::vector<http::PageFeatures> none;
  cluster::LshOptions options;
  const auto empty = cluster::lsh_cluster(
      none, [](std::size_t) { return std::string_view(); }, options);
  EXPECT_EQ(empty.clusters, 0u);
  EXPECT_TRUE(empty.labels.empty());

  const auto corpus = make_corpus(1);
  const auto features = corpus_features(corpus);
  const auto one = cluster::lsh_cluster(features, body_fn(corpus), options);
  EXPECT_EQ(one.clusters, 1u);
  ASSERT_EQ(one.labels.size(), 1u);
  EXPECT_EQ(one.labels[0], 0);
  EXPECT_EQ(one.cluster_exemplar, std::vector<std::size_t>{0});
}

TEST(Lsh, OversizedGroupsFallBackDeterministically) {
  // Force every group through the leader path with a tiny cap; the result
  // must stay deterministic and still collapse duplicate pages.
  auto corpus = make_corpus(30);
  corpus.push_back(corpus[1]);  // exact duplicate must always co-cluster
  const auto features = corpus_features(corpus);
  cluster::LshOptions options;
  options.hac_group_cap = 2;
  options.stitch_cap = 2;
  const auto first = cluster::lsh_cluster(features, body_fn(corpus), options);
  const auto second = cluster::lsh_cluster(features, body_fn(corpus), options);
  EXPECT_EQ(first.labels, second.labels);
  EXPECT_EQ(first.labels[1], first.labels[corpus.size() - 1]);
  EXPECT_GT(first.clusters, 1u);
}

TEST(ClusterModel, AssignHonoursContract) {
  const auto corpus = make_corpus(60);
  const auto features = corpus_features(corpus);
  cluster::LshOptions options;
  const auto clustering =
      cluster::lsh_cluster(features, body_fn(corpus), options);
  const auto model =
      cluster::make_cluster_model(clustering, features, options);
  ASSERT_EQ(model.clusters(), clustering.clusters);

  // A cluster's own exemplar must come back as that cluster: identical
  // signatures share every band key, and the exact distance is zero.
  for (std::size_t c = 0; c < clustering.clusters; ++c) {
    const std::size_t item = clustering.cluster_exemplar[c];
    std::size_t examined = 0;
    const int assigned = model.assign(
        features[item], clustering.signatures[item], &examined);
    EXPECT_EQ(assigned, static_cast<int>(c)) << "cluster " << c;
    EXPECT_GE(examined, 1u);
  }

  // Every clustered item either maps to a cluster whose exemplar is within
  // the cut, or legitimately finds no candidate.
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const int assigned =
        model.assign(features[i], clustering.signatures[i]);
    if (assigned >= 0) {
      const std::size_t exemplar =
          clustering.cluster_exemplar[static_cast<std::size_t>(assigned)];
      EXPECT_LE(cluster::page_distance(features[i], features[exemplar]),
                options.cut)
          << "item " << i;
    }
  }
}

TEST(ClusterModel, BatchAssignMatchesScalarAndIsThreadInvariant) {
  const auto corpus = make_corpus(48);
  const auto features = corpus_features(corpus);
  cluster::LshOptions options;
  const auto clustering =
      cluster::lsh_cluster(features, body_fn(corpus), options);
  const auto model =
      cluster::make_cluster_model(clustering, features, options);

  // "New" pages reuse the corpus bodies: realistic near-duplicates of the
  // modeled clusters.
  const auto batch = make_corpus(48);
  const auto batch_features = corpus_features(batch);
  std::size_t serial_examined = 0;
  const auto serial = cluster::assign_to_clusters(
      batch_features, body_fn(batch), model, nullptr, &serial_examined);
  ASSERT_EQ(serial.size(), batch.size());

  const auto signatures = cluster::compute_signatures(
      batch.size(), body_fn(batch), batch_features,
      model.signature_config(), nullptr);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(serial[i], model.assign(batch_features[i], signatures[i]))
        << "item " << i;
  }

  scan::ParallelExecutor executor(8);
  std::size_t pooled_examined = 0;
  const auto pooled = cluster::assign_to_clusters(
      batch_features, body_fn(batch), model, &executor, &pooled_examined);
  EXPECT_EQ(pooled, serial);
  EXPECT_EQ(pooled_examined, serial_examined);

  // The incremental path must stay sub-quadratic in examined candidates:
  // strictly fewer exact distances than brute-force against every cluster.
  EXPECT_LT(serial_examined, batch.size() * model.clusters());
}

core::AcquiredPage make_page(std::size_t record_index, std::string body,
                             int status = 200) {
  core::AcquiredPage page;
  page.record_index = record_index;
  page.status = status;
  page.body = std::move(body);
  page.body_hash = util::fnv1a(page.body);
  page.connected = true;
  return page;
}

// The ISSUE's quality gate: on the paper-scale fixture, LSH mode must
// reproduce the exact pipeline's Table 5 class labels bit-for-bit.
TEST(ClassifyLsh, QualityGateLabelsMatchExactPipeline) {
  const auto corpus = make_corpus(160);
  std::vector<scan::TupleRecord> records(corpus.size());
  std::vector<core::AcquiredPage> pages;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    pages.push_back(make_page(i, corpus[i]));
  }

  core::ClassifierConfig exact;
  exact.mode = core::ClusterMode::kExact;
  const auto exact_result = core::classify_responses(records, pages, exact);
  ASSERT_GT(exact_result.clusters, 1u);
  EXPECT_FALSE(exact_result.lsh.used);

  core::ClassifierConfig lsh;
  lsh.mode = core::ClusterMode::kLsh;
  lsh.validate_lsh = true;
  const auto lsh_result = core::classify_responses(records, pages, lsh);
  EXPECT_TRUE(lsh_result.lsh.used);
  EXPECT_EQ(lsh_result.unique_pages, exact_result.unique_pages);
  ASSERT_EQ(lsh_result.tuples.size(), exact_result.tuples.size());
  for (std::size_t i = 0; i < lsh_result.tuples.size(); ++i) {
    EXPECT_EQ(lsh_result.tuples[i].label, exact_result.tuples[i].label)
        << "tuple " << i;
  }
  EXPECT_EQ(lsh_result.labeled_fraction, exact_result.labeled_fraction);
  // validate_lsh ran the exact pipeline alongside and scored agreement.
  EXPECT_EQ(lsh_result.lsh.label_agreement, 1.0);
  // The approximation report is populated.
  EXPECT_EQ(lsh_result.lsh.stats.items, lsh_result.unique_pages);
  EXPECT_GT(lsh_result.lsh.stats.full_pairs, 0u);
  EXPECT_LE(lsh_result.lsh.stats.candidate_pairs,
            lsh_result.lsh.stats.full_pairs);
  EXPECT_EQ(lsh_result.pair_distances, lsh_result.lsh.stats.candidate_pairs);
}

TEST(ClassifyLsh, LshLabelsInvariantAcrossThreadCounts) {
  const auto corpus = make_corpus(64);
  std::vector<scan::TupleRecord> records(corpus.size());
  std::vector<core::AcquiredPage> pages;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    pages.push_back(make_page(i, corpus[i]));
  }
  core::ClassifierConfig config;
  config.mode = core::ClusterMode::kLsh;
  config.threads = 1;
  const auto baseline = core::classify_responses(records, pages, config);
  ASSERT_TRUE(baseline.lsh.used);
  for (const unsigned threads : {2u, 8u}) {
    config.threads = threads;
    const auto result = core::classify_responses(records, pages, config);
    EXPECT_EQ(result.clusters, baseline.clusters);
    ASSERT_EQ(result.tuples.size(), baseline.tuples.size());
    for (std::size_t i = 0; i < result.tuples.size(); ++i) {
      EXPECT_EQ(result.tuples[i].label, baseline.tuples[i].label);
      EXPECT_EQ(result.tuples[i].cluster, baseline.tuples[i].cluster);
    }
    EXPECT_EQ(result.lsh.stats.candidate_pairs,
              baseline.lsh.stats.candidate_pairs);
  }
}

TEST(ClassifyLsh, AutoModeSwitchesAtCrossover) {
  const auto corpus = make_corpus(40);
  std::vector<scan::TupleRecord> records(corpus.size());
  std::vector<core::AcquiredPage> pages;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    pages.push_back(make_page(i, corpus[i]));
  }
  core::ClassifierConfig config;
  config.mode = core::ClusterMode::kAuto;

  config.lsh_crossover = 10;  // below the unique count: LSH engages
  const auto lsh_result = core::classify_responses(records, pages, config);
  EXPECT_TRUE(lsh_result.lsh.used);

  config.lsh_crossover = 10000;  // above it: the exact matrix runs
  const auto exact_result = core::classify_responses(records, pages, config);
  EXPECT_FALSE(exact_result.lsh.used);

  // Regardless of engine, the content labels agree on this fixture.
  ASSERT_EQ(lsh_result.tuples.size(), exact_result.tuples.size());
  for (std::size_t i = 0; i < lsh_result.tuples.size(); ++i) {
    EXPECT_EQ(lsh_result.tuples[i].label, exact_result.tuples[i].label);
  }
}

}  // namespace
}  // namespace dnswild
