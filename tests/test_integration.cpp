// Full-study integration: landscape campaigns (Fig. 1/2, Tables 1-4, §2.6)
// on one generated world, asserting the paper's qualitative findings.
#include <gtest/gtest.h>

#include "analysis/churn.h"
#include "analysis/fingerprint.h"
#include "analysis/fluctuation.h"
#include "analysis/software_classify.h"
#include "analysis/utilization.h"
#include "analysis/weekly.h"
#include "core/domains.h"
#include "scan/banner_scan.h"
#include "scan/chaos_scan.h"
#include "scan/snoop_probe.h"
#include "worldgen/worldgen.h"

namespace dnswild {
namespace {

struct Campaign {
  worldgen::GeneratedWorld generated;
  analysis::WeeklyCampaignResult weekly;
};

Campaign& shared_campaign() {
  static Campaign* campaign = [] {
    auto* out = new Campaign();
    worldgen::WorldGenConfig config;
    config.resolver_count = 1000;
    config.seed = 33;
    out->generated = worldgen::generate_world(config);

    analysis::WeeklyCampaignConfig weekly_config;
    weekly_config.weeks = 12;  // scaled-down study window
    weekly_config.scan.scanner_ip = out->generated.scanner_ip;
    weekly_config.scan.zone = out->generated.scan_zone;
    weekly_config.scan.blacklist = &out->generated.blacklist;
    weekly_config.scan.seed = 8;
    weekly_config.universe = out->generated.universe;
    out->weekly =
        analysis::run_weekly_campaign(*out->generated.world, weekly_config);
    return out;
  }();
  return *campaign;
}

TEST(Integration, Figure1ShapePopulationDeclines) {
  const auto& weekly = shared_campaign().weekly;
  ASSERT_EQ(weekly.series.size(), 12u);
  EXPECT_EQ(weekly.series.front().date, "2014/01/31");
  // NOERROR declines over the (shortened) window; REFUSED stays stable.
  EXPECT_LT(weekly.series.back().noerror, weekly.series.front().noerror);
  const double refused_ratio =
      static_cast<double>(weekly.series.back().refused) /
      static_cast<double>(weekly.series.front().refused);
  EXPECT_GT(refused_ratio, 0.8);
  EXPECT_LT(refused_ratio, 1.2);
  // Multi-homed responders show up every week (§2.2: 630-750k weekly).
  for (const auto& point : weekly.series) {
    EXPECT_GT(point.multihomed, 0u);
  }
}

TEST(Integration, Figure2ChurnShape) {
  const auto& weekly = shared_campaign().weekly;
  const auto curve = analysis::churn_curve(
      weekly.first_scan_noerror.size(), weekly.churn_age_days,
      weekly.churn_alive);
  ASSERT_GE(curve.size(), 10u);
  // Fig. 2 anchors: >40% gone within the first day, ~52% within a week.
  EXPECT_LT(curve.front().alive_fraction, 0.75);
  EXPECT_GT(curve.front().alive_fraction, 0.4);
  // Week-1 point (age 7 days).
  double week1 = 1.0;
  for (const auto& point : curve) {
    if (point.age_days >= 6.9 && point.age_days <= 7.1) {
      week1 = point.alive_fraction;
    }
  }
  EXPECT_LT(week1, 0.62);
  EXPECT_GT(week1, 0.32);
  // Monotone non-increasing within tolerance.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].alive_fraction,
              curve[i - 1].alive_fraction + 0.03);
  }
}

TEST(Integration, ChurnedAddressesAreDynamicPools) {
  const auto& campaign = shared_campaign();
  const auto stats = analysis::rdns_churn_stats(
      campaign.generated.world->rdns(),
      campaign.weekly.disappeared_first_day);
  EXPECT_GT(stats.disappeared_first_day, 0u);
  EXPECT_GT(stats.with_rdns, 0u);
  // §2.5: at least 67.4% of the disappeared-with-rDNS carry dynamic tokens.
  EXPECT_GT(stats.dynamic_fraction, 0.55);
}

TEST(Integration, Table1CountryRanking) {
  const auto& campaign = shared_campaign();
  const auto rows = analysis::fluctuation_by_country(
      campaign.generated.world->asdb(), campaign.weekly.first_scan_noerror,
      campaign.weekly.last_scan_noerror);
  ASSERT_GE(rows.size(), 10u);
  // US leads, CN second (Table 1).
  EXPECT_EQ(rows[0].key, "US");
  EXPECT_EQ(rows[1].key, "CN");
}

TEST(Integration, Table2RirRanking) {
  const auto& campaign = shared_campaign();
  const auto rows = analysis::fluctuation_by_rir(
      campaign.generated.world->asdb(), campaign.weekly.first_scan_noerror,
      campaign.weekly.last_scan_noerror);
  ASSERT_GE(rows.size(), 4u);
  // Table 2: RIPE and APNIC carry the most resolvers.
  EXPECT_TRUE(rows[0].key == "RIPE" || rows[0].key == "APNIC")
      << rows[0].key;
}

TEST(Integration, Table3SoftwareMix) {
  auto& campaign = shared_campaign();
  scan::ChaosScanner scanner(*campaign.generated.world,
                             campaign.generated.scanner_ip, 17);
  const auto results =
      scanner.scan(campaign.weekly.last_scan_noerror);
  const auto report = analysis::summarize_software(results, 10);
  ASSERT_GT(report.responded, 0u);
  const double total = static_cast<double>(report.responded);
  // §2.4 mix: ~42.7% errors, ~33.9% revealing, ~18.8% hidden.
  EXPECT_NEAR(report.error_both / total, 0.427, 0.08);
  EXPECT_NEAR(report.revealing / total, 0.339, 0.08);
  EXPECT_NEAR(report.hidden / total, 0.188, 0.08);
  // BIND 9.8.2 tops Table 3; BIND holds ~60% of revealing.
  ASSERT_FALSE(report.top.empty());
  EXPECT_EQ(report.top[0].software, "BIND 9.8.2");
  EXPECT_NEAR(report.bind_share_of_revealing, 0.602, 0.1);
}

TEST(Integration, Table4DeviceMix) {
  auto& campaign = shared_campaign();
  scan::BannerScanner scanner(*campaign.generated.world,
                              campaign.generated.scanner_ip);
  const auto results = scanner.scan(campaign.weekly.last_scan_noerror);
  const analysis::DeviceFingerprinter fingerprinter;
  const auto report = fingerprinter.summarize(results);
  // §2.4: 26.3% expose TCP services.
  const double responsive_share =
      static_cast<double>(report.tcp_responsive) /
      static_cast<double>(report.tcp_responsive + report.no_tcp_payload);
  EXPECT_NEAR(responsive_share, 0.263, 0.08);
  // Routers lead the identified hardware; Unknown is large (Table 4).
  ASSERT_GE(report.hardware.size(), 2u);
  EXPECT_TRUE(report.hardware[0].key == "Router" ||
              report.hardware[0].key == "Unknown");
  double router_share = 0, zynos_share = 0;
  for (const auto& row : report.hardware) {
    if (row.key == "Router") router_share = row.share;
  }
  for (const auto& row : report.os) {
    if (row.key == "ZyNOS") zynos_share = row.share;
  }
  EXPECT_NEAR(router_share, 0.341, 0.1);
  EXPECT_NEAR(zynos_share, 0.166, 0.08);
}

TEST(Integration, Section26Utilization) {
  auto& campaign = shared_campaign();
  // Snoop a sample of the current population.
  std::vector<net::Ipv4> sample = campaign.weekly.last_scan_noerror;
  if (sample.size() > 250) sample.resize(250);
  scan::SnoopCampaignConfig config;
  config.scanner_ip = campaign.generated.scanner_ip;
  config.seed = 23;
  scan::SnoopProber prober(*campaign.generated.world, config);
  const auto series = prober.run(sample, core::snoop_tlds());
  const auto report = analysis::summarize_utilization(
      series, static_cast<std::uint32_t>(sample.size()),
      analysis::UtilizationConfig{});
  const double total = static_cast<double>(report.total);
  // §2.6: 83.2% respond to snooping; 61.6% in use; 38.7% frequently used.
  EXPECT_GT(report.responded_any / total, 0.7);
  EXPECT_NEAR(report.in_use() / total, 0.616, 0.12);
  EXPECT_NEAR(report.per_class[static_cast<int>(
                  analysis::UtilizationClass::kFrequentlyUsed)] /
                  total,
              0.387, 0.12);
  EXPECT_GT(report.per_class[static_cast<int>(
                analysis::UtilizationClass::kTtlReset)],
            0u);
}

}  // namespace
}  // namespace dnswild
