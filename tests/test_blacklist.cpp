#include "scan/blacklist.h"

#include <gtest/gtest.h>

namespace dnswild::scan {
namespace {

TEST(Blacklist, RangesAndAddresses) {
  Blacklist blacklist;
  blacklist.add_range(*net::Cidr::parse("100.100.0.0/16"));
  blacklist.add_address(net::Ipv4(8, 8, 8, 8));

  EXPECT_TRUE(blacklist.contains(net::Ipv4(100, 100, 5, 5)));
  EXPECT_TRUE(blacklist.contains(net::Ipv4(8, 8, 8, 8)));
  EXPECT_FALSE(blacklist.contains(net::Ipv4(100, 101, 0, 1)));
  EXPECT_FALSE(blacklist.contains(net::Ipv4(8, 8, 8, 9)));
}

TEST(Blacklist, EmptyMatchesNothing) {
  Blacklist blacklist;
  EXPECT_FALSE(blacklist.contains(net::Ipv4(1, 2, 3, 4)));
  EXPECT_EQ(blacklist.address_space(), 0u);
}

TEST(Blacklist, AddressSpaceAccounting) {
  // The paper reports 208 ranges + 50 addresses = 20,834,166 addresses;
  // verify the accounting (with multiplicity) on a small instance.
  Blacklist blacklist;
  blacklist.add_range(*net::Cidr::parse("10.0.0.0/24"));
  blacklist.add_range(*net::Cidr::parse("10.1.0.0/30"));
  blacklist.add_address(net::Ipv4(1, 1, 1, 1));
  blacklist.add_address(net::Ipv4(1, 1, 1, 2));
  EXPECT_EQ(blacklist.address_space(), 256u + 4u + 2u);
  EXPECT_EQ(blacklist.range_count(), 2u);
  EXPECT_EQ(blacklist.address_count(), 2u);
}

}  // namespace
}  // namespace dnswild::scan
