// The second observability tier (DESIGN.md §13): virtual-time series,
// histogram percentiles, the find_span index, the flight recorder's ring
// + Chrome trace export, the per-/20 prefix telemetry plane, and the
// acceptance contracts — trace and prefix exports byte-identical across
// thread counts under a lossy chaos world, and changed_prefixes flagging
// exactly the chaos-profile prefixes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "obs/prefix_telemetry.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "scan/ipv4scan.h"
#include "worldgen/worldgen.h"

namespace dnswild {
namespace {

// --- virtual-time series --------------------------------------------------

TEST(ObsSeries, SumModeBucketizesAndClampsOverflow) {
  obs::Registry registry;
  obs::Series& series =
      registry.series("s.sum", /*bucket_width_us=*/100, /*max_buckets=*/4,
                      obs::SeriesMode::kSum);
  series.record(0, 2);
  series.record(99, 3);    // still bucket 0 (width 100)
  series.record(100, 5);   // bucket 1
  series.record(10000, 7); // past the end: clamps into the last bucket
  EXPECT_EQ(series.bucket(0), 5u);
  EXPECT_EQ(series.bucket(1), 5u);
  EXPECT_EQ(series.bucket(2), 0u);
  EXPECT_EQ(series.bucket(3), 7u);

  // The snapshot carries width/mode and every bucket up to the last
  // nonzero one (trailing zeros are trimmed, interior ones kept).
  const obs::Snapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.series.size(), 1u);
  EXPECT_EQ(snapshot.series[0].name, "s.sum");
  EXPECT_EQ(snapshot.series[0].bucket_width_us, 100u);
  EXPECT_EQ(snapshot.series[0].mode, obs::SeriesMode::kSum);
  ASSERT_EQ(snapshot.series[0].buckets.size(), 4u);
  EXPECT_EQ(snapshot.series[0].buckets[2], 0u);
}

TEST(ObsSeries, MaxModeKeepsHighWaterMarkPerBucket) {
  obs::Registry registry;
  obs::Series& series = registry.series("s.max", 100, 4,
                                        obs::SeriesMode::kMax);
  series.record(50, 7);
  series.record(60, 3);  // lower value never regresses the bucket
  series.record(70, 9);
  EXPECT_EQ(series.bucket(0), 9u);

  const obs::Snapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.series.size(), 1u);
  EXPECT_EQ(snapshot.series[0].buckets.size(), 1u);  // trailing zeros gone
  EXPECT_EQ(snapshot.series[0].buckets[0], 9u);
}

TEST(ObsSeries, JsonReportIsV2AndCarriesSeries) {
  obs::Registry registry;
  registry.series("scan.series.sends", 250000, 8, obs::SeriesMode::kSum)
      .record(0, 4);
  const std::string json = registry.to_json(true);
  EXPECT_NE(json.find("\"schema\": \"dnswild.metrics.v2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"scan.series.sends\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"sum\""), std::string::npos);
  EXPECT_NE(json.find("\"bucket_width_us\": 250000"), std::string::npos);
}

// --- percentiles ----------------------------------------------------------

TEST(ObsHistogram, PercentilesInterpolateWithinBuckets) {
  obs::Registry registry;
  obs::Histogram& histogram = registry.histogram("lat", {10, 100});
  for (std::uint64_t v = 1; v <= 8; ++v) histogram.observe(v);  // le=10: 8
  histogram.observe(50);                                        // le=100: 2
  histogram.observe(60);
  // p50: rank 5 of 10 falls in [0, 10] at fraction 5/8.
  EXPECT_DOUBLE_EQ(histogram.percentile(0.50), 6.25);
  // p90: rank 9 falls in (10, 100] at fraction (9-8)/2.
  EXPECT_DOUBLE_EQ(histogram.percentile(0.90), 55.0);
  EXPECT_DOUBLE_EQ(histogram.percentile(0.0), 0.0);

  // The snapshot copy computes the same quantiles.
  const obs::Snapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.histograms[0].percentile(0.50), 6.25);
  EXPECT_DOUBLE_EQ(snapshot.histograms[0].percentile(0.90), 55.0);
}

TEST(ObsHistogram, PercentileOverflowReportsLastFiniteBound) {
  obs::Registry registry;
  obs::Histogram& histogram = registry.histogram("lat", {10, 100});
  histogram.observe(5000);  // overflow bucket only
  EXPECT_DOUBLE_EQ(histogram.percentile(0.99), 100.0);
  obs::Registry empty;
  EXPECT_DOUBLE_EQ(empty.histogram("e", {10}).percentile(0.5), 0.0);
}

// --- find_span index ------------------------------------------------------

TEST(ObsSnapshot, FindSpanBinarySearchesAndKeepsFirstSeqForDuplicates) {
  obs::Registry registry;
  { obs::Span z(registry, "zeta"); }
  { obs::Span a(registry, "alpha"); }
  {
    obs::Span first(registry, "dup");
    first.items_in(1);
  }
  {
    obs::Span second(registry, "dup");
    second.items_in(2);
  }
  const obs::Snapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.span_index.size(), snapshot.spans.size());
  ASSERT_NE(snapshot.find_span("zeta"), nullptr);
  ASSERT_NE(snapshot.find_span("alpha"), nullptr);
  EXPECT_EQ(snapshot.find_span("missing"), nullptr);
  // Duplicate names resolve to the earliest-opened span, matching the old
  // linear scan's behavior.
  const obs::SpanRecord* dup = snapshot.find_span("dup");
  ASSERT_NE(dup, nullptr);
  EXPECT_EQ(dup->items_in, 1);
}

TEST(ObsSnapshot, FindSpanFallsBackToLinearScanWithoutIndex) {
  obs::Snapshot snapshot;  // hand-built: no span_index
  obs::SpanRecord record;
  record.name = "handmade";
  record.seq = 1;
  snapshot.spans.push_back(record);
  ASSERT_NE(snapshot.find_span("handmade"), nullptr);
  EXPECT_EQ(snapshot.find_span("other"), nullptr);
}

// --- flight recorder ------------------------------------------------------

TEST(ObsTrace, RingOverflowDropsOldestAndCountsInRegistry) {
  obs::Registry registry;
  obs::TraceRecorder trace(registry, /*capacity_per_shard=*/4);
  for (int i = 0; i < 6; ++i) {
    trace.instant("e" + std::to_string(i));  // stage plane: all shard 0
  }
  EXPECT_EQ(trace.dropped(), 2u);
  EXPECT_EQ(registry.counter("trace.dropped").value(), 2u);
  const std::string json = trace.to_chrome_json();
  // The two oldest events were overwritten; the newest four survive.
  EXPECT_EQ(json.find("\"name\": \"e0\""), std::string::npos);
  EXPECT_EQ(json.find("\"name\": \"e1\""), std::string::npos);
  for (const char* name : {"\"name\": \"e2\"", "\"name\": \"e3\"",
                           "\"name\": \"e4\"", "\"name\": \"e5\""}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

TEST(ObsTrace, DisabledRecorderRecordsNothing) {
  obs::Registry registry;
  obs::TraceRecorder trace(registry);
  trace.set_enabled(false);
  trace.instant("ghost");
  trace.probe(obs::TraceKind::kProbeSend, trace.intern("x.send"), 10, 1, 0,
              0);
  EXPECT_EQ(trace.dropped(), 0u);
  EXPECT_EQ(trace.to_chrome_json().find("ghost"), std::string::npos);
  // The clock still advances while disabled (shared campaign timeline).
  trace.advance(500);
  EXPECT_EQ(trace.now_us(), 500u);
}

TEST(ObsTrace, ChromeJsonHasStageProbeAndCounterEvents) {
  obs::Registry registry;
  registry.series("scan.series.sends", 250000, 4, obs::SeriesMode::kSum)
      .record(0, 3);
  obs::TraceRecorder trace(registry);
  trace.stage_begin("stage.scan");
  const std::uint32_t send_id = trace.intern("scan.ipv4.event.send");
  trace.probe(obs::TraceKind::kProbeSend, send_id, /*ts_us=*/500,
              /*stream=*/3, /*step=*/0, /*attempt=*/0);
  trace.advance(1000);
  trace.stage_end("stage.scan");

  const obs::Snapshot snapshot = registry.snapshot();
  const std::string json = trace.to_chrome_json(&snapshot);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"dnswild\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  // Probe instants land on the stream's shard thread (stream 3 -> tid 4).
  EXPECT_NE(json.find("\"ph\": \"i\", \"pid\": 1, \"tid\": 4"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"scan.ipv4.event.send\""),
            std::string::npos);
  // Metrics series become Perfetto counter tracks.
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"scan.series.sends\""), std::string::npos);
}

TEST(ObsTrace, SpanBridgeEmitsStageEventsWhenAttached) {
  obs::Registry registry;
  obs::TraceRecorder trace(registry);
  registry.attach_trace(&trace);
  { obs::Span span(registry, "stage.bridge"); }
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"stage.bridge\""), std::string::npos);
}

// --- changed_prefixes semantics ------------------------------------------

obs::PrefixTable table_of(std::vector<obs::PrefixRow> rows) {
  obs::PrefixTable table;
  table.rows = std::move(rows);
  return table;
}

TEST(PrefixTelemetry, ChangedPrefixesThresholdSemantics) {
  obs::PrefixRow busy;
  busy.key = 10;
  busy.stats.probes = 100;
  busy.stats.responses = 90;

  // Response-rate collapse on a well-probed prefix flags it.
  obs::PrefixRow collapsed = busy;
  collapsed.stats.responses = 10;
  EXPECT_EQ(obs::changed_prefixes(table_of({busy}), table_of({collapsed})),
            (std::vector<std::uint32_t>{10}));

  // The same rate movement under min_probes stays quiet.
  obs::PrefixRow tiny;
  tiny.key = 11;
  tiny.stats.probes = 4;
  tiny.stats.responses = 4;
  obs::PrefixRow tiny_dark = tiny;
  tiny_dark.stats.responses = 0;
  EXPECT_TRUE(obs::changed_prefixes(table_of({tiny}), table_of({tiny_dark}))
                  .empty());

  // Fault and rebind movement flag at delta 1, probes notwithstanding.
  obs::PrefixRow faulted = busy;
  faulted.stats.fault_hits = 1;
  EXPECT_EQ(obs::changed_prefixes(table_of({busy}), table_of({faulted})),
            (std::vector<std::uint32_t>{10}));
  obs::PrefixRow rebound = busy;
  rebound.stats.rebinds = 1;
  EXPECT_EQ(obs::changed_prefixes(table_of({busy}), table_of({rebound})),
            (std::vector<std::uint32_t>{10}));

  // Prefixes absent from one side diff against an all-zero row.
  EXPECT_EQ(obs::changed_prefixes(table_of({}), table_of({faulted})),
            (std::vector<std::uint32_t>{10}));

  // Identity diff is empty.
  EXPECT_TRUE(
      obs::changed_prefixes(table_of({busy}), table_of({busy})).empty());
}

TEST(PrefixTelemetry, TableRendersCidrAndFindsKeys) {
  obs::PrefixTelemetry telemetry;
  // 203.0.16.1 -> /20 key for 203.0.16.0/20.
  const std::uint32_t address = (203u << 24) | (0u << 16) | (16u << 8) | 1u;
  telemetry.record_probe(address, true, obs::RcodeClass::kNoError, 0);
  telemetry.record_probe(address, false, obs::RcodeClass::kOther, 2);
  const obs::PrefixTable table = telemetry.snapshot();
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(obs::prefix_cidr(table.rows[0].key), "203.0.16.0/20");
  const obs::PrefixStats* stats = table.find(table.rows[0].key);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->probes, 2u);
  EXPECT_EQ(stats->responses, 1u);
  EXPECT_EQ(stats->timeouts, 1u);
  EXPECT_EQ(stats->retries, 2u);
  EXPECT_EQ(stats->noerror, 1u);
  EXPECT_EQ(table.find(table.rows[0].key + 1), nullptr);
  EXPECT_NE(table.to_json().find("\"schema\": \"dnswild.prefixes.v1\""),
            std::string::npos);
}

// --- acceptance: thread-invariant exports under a lossy chaos world ------

struct ChaosExports {
  std::string trace;
  std::string prefixes;
  std::string metrics;
};

ChaosExports chaos_pipeline_exports_at(unsigned threads) {
  worldgen::WorldGenConfig config;
  config.seed = 91;
  config.resolver_count = 300;
  config.chaos.enabled = true;
  config.chaos.network_fraction = 0.5;
  config.chaos.burst_loss = 0.2;
  config.chaos.base_loss = 0.2;
  worldgen::GeneratedWorld gen = worldgen::generate_world(config);

  scan::Ipv4ScanConfig scan_config;
  scan_config.scanner_ip = gen.scanner_ip;
  scan_config.zone = gen.scan_zone;
  scan_config.blacklist = &gen.blacklist;
  scan_config.seed = 3;
  scan_config.threads = threads;
  scan::Ipv4Scanner scanner(*gen.world, scan_config);
  const auto summary = scanner.scan(gen.universe);

  core::PipelineConfig pipeline_config;
  pipeline_config.scanner_ip = gen.scanner_ip;
  pipeline_config.vantage_ip = gen.vantage_ip;
  pipeline_config.seed = 5;
  pipeline_config.scan_threads = threads;
  pipeline_config.classifier.threads = threads;
  core::Pipeline pipeline(*gen.world, *gen.registry, pipeline_config);
  const core::StudyReport report =
      pipeline.run(summary.noerror_targets, gen.domains);

  ChaosExports exports;
  exports.trace = gen.world->trace().to_chrome_json(&report.metrics);
  exports.prefixes = report.prefixes.to_json();
  exports.metrics = report.metrics.to_json(true);
  return exports;
}

TEST(TelemetryPipeline, ExportsAreThreadCountInvariantUnderChaos) {
  const ChaosExports at1 = chaos_pipeline_exports_at(1);
  const ChaosExports at2 = chaos_pipeline_exports_at(2);
  const ChaosExports at8 = chaos_pipeline_exports_at(8);

  // The flight recorder needs no masking: probe fates are pure hashes and
  // every event is recorded serially on the coordinator.
  EXPECT_EQ(at1.trace, at2.trace);
  EXPECT_EQ(at1.trace, at8.trace);
  // The prefix plane is all-additive, so neither does it.
  EXPECT_EQ(at1.prefixes, at2.prefixes);
  EXPECT_EQ(at1.prefixes, at8.prefixes);
  // And the v2 metrics document keeps the §8 masked-invariance contract.
  EXPECT_EQ(at1.metrics, at2.metrics);
  EXPECT_EQ(at1.metrics, at8.metrics);

  // The lossy world actually exercised the planes under test.
  EXPECT_NE(at1.prefixes.find("\"fault_hits\": "), std::string::npos);
  EXPECT_NE(at1.trace.find("timeout"), std::string::npos);
}

// --- acceptance: changed_prefixes flags exactly the chaos prefixes -------

TEST(PrefixTelemetry, ChangedPrefixesFlagsExactlyTheChaosProfilePrefixes) {
  // Two identical worlds modulo the fault plane: chaos profiles are
  // hash-gated onto routed prefixes after generation, so populations and
  // probe outcomes outside the profiled networks match exactly.
  worldgen::WorldGenConfig clean_config;
  clean_config.seed = 77;
  clean_config.resolver_count = 200;
  clean_config.with_devices = false;
  worldgen::WorldGenConfig chaos_config = clean_config;
  chaos_config.chaos.enabled = true;
  chaos_config.chaos.network_fraction = 0.5;
  chaos_config.chaos.episode_rate = 1.0;  // always in-episode...
  chaos_config.chaos.burst_loss = 1.0;    // ...and every packet lost
  chaos_config.chaos.base_loss = 1.0;

  const auto scan_table = [](worldgen::GeneratedWorld& gen) {
    scan::Ipv4ScanConfig config;
    config.scanner_ip = gen.scanner_ip;
    config.zone = gen.scan_zone;
    config.seed = 3;  // no blacklist: both runs probe the full universe
    config.threads = 2;
    scan::Ipv4Scanner scanner(*gen.world, config);
    scanner.scan(gen.universe);
    return gen.world->prefix_telemetry().snapshot();
  };

  worldgen::GeneratedWorld clean = worldgen::generate_world(clean_config);
  worldgen::GeneratedWorld chaos = worldgen::generate_world(chaos_config);
  const obs::PrefixTable before = scan_table(clean);
  const obs::PrefixTable after = scan_table(chaos);

  // Expected: exactly the probed /20s that intersect a fault-profile
  // network (total loss guarantees every such prefix records hits).
  const auto& profiles = chaos.world->fault_plan().profiles();
  ASSERT_FALSE(profiles.empty());
  std::vector<std::uint32_t> expected;
  for (const obs::PrefixRow& row : after.rows) {
    const std::uint64_t lo = std::uint64_t{row.key} << 12;
    const std::uint64_t hi = lo + (1u << 12) - 1;
    for (const net::FaultProfile& profile : profiles) {
      const std::uint64_t p_lo = profile.network.base().value();
      const std::uint64_t p_hi = p_lo + profile.network.size() - 1;
      if (lo <= p_hi && p_lo <= hi) {
        expected.push_back(row.key);
        break;
      }
    }
  }
  ASSERT_FALSE(expected.empty());

  EXPECT_EQ(obs::changed_prefixes(before, after), expected);
  EXPECT_TRUE(obs::changed_prefixes(before, before).empty());
}

}  // namespace
}  // namespace dnswild
