// Longitudinal campaign engine: crash-safe resume and delta scanning
// (DESIGN.md §14).
//
// The headline contract: a campaign that is SIGKILLed mid-epoch and then
// resumed produces a masked final report byte-identical to the
// uninterrupted run, at every thread count. The crash drill forks a child
// that installs the engine's mid-epoch hook and raises SIGKILL after
// epoch 1's scan but before it persists — the widest window a real crash
// can hit. The fork happens while this process is single-threaded (every
// scan joins its worker pool before returning), so the drill is safe
// under TSan.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "campaign/campaign.h"
#include "worldgen/worldgen.h"

namespace dnswild {
namespace {

namespace fs = std::filesystem;

worldgen::WorldGenConfig world_config() {
  worldgen::WorldGenConfig config;
  config.seed = 3;
  config.resolver_count = 400;
  return config;
}

campaign::CampaignConfig campaign_config(const std::string& store_dir,
                                         unsigned threads) {
  campaign::CampaignConfig config;
  config.store_dir = store_dir;
  config.epochs = 3;
  config.interval_minutes = 7 * 1440;
  config.seed = 42;
  config.threads = threads;
  return config;
}

// Builds a fresh world and runs (or resumes) the campaign in it. Every
// call constructs its own world from the same seed, exactly like a fresh
// process would after a crash.
campaign::CampaignResult run_campaign(const std::string& store_dir,
                                      unsigned threads, bool resume,
                                      int kill_at_epoch = -1) {
  worldgen::GeneratedWorld gen = worldgen::generate_world(world_config());
  campaign::CampaignTargets targets;
  targets.scanner_ip = gen.scanner_ip;
  targets.zone = gen.scan_zone;
  targets.blacklist = &gen.blacklist;
  targets.universe = gen.universe;
  campaign::CampaignEngine engine(*gen.world, targets,
                                  campaign_config(store_dir, threads));
  if (kill_at_epoch >= 0) {
    engine.set_mid_epoch_hook([kill_at_epoch](std::uint32_t index) {
      if (static_cast<int>(index) == kill_at_epoch) std::raise(SIGKILL);
    });
  }
  return engine.run(resume);
}

struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path(fs::current_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  fs::path path;
};

TEST(Campaign, CrashResumeIsByteIdenticalAcrossThreadCounts) {
  std::string reference;
  for (unsigned threads : {1u, 2u, 8u}) {
    const std::string suffix = std::to_string(threads);
    ScratchDir uninterrupted("campaign_uninterrupted_" + suffix);
    ScratchDir crashed("campaign_crashed_" + suffix);

    // Uninterrupted baseline at this thread count.
    const campaign::CampaignResult baseline =
        run_campaign(uninterrupted.path.string(), threads, false);
    const std::string masked = baseline.to_json(/*mask=*/true);
    ASSERT_EQ(baseline.epochs.size(), 3u);
    if (reference.empty()) {
      reference = masked;
    } else {
      EXPECT_EQ(masked, reference)
          << "uninterrupted report differs at threads=" << threads;
    }

    // Crash drill: the child dies by SIGKILL after epoch 1's scan, before
    // epoch 1 persists. Only epoch 0 survives in the store.
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      run_campaign(crashed.path.string(), threads, false, /*kill_at=*/1);
      _exit(1);  // unreachable: the hook raised SIGKILL
    }
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);
    EXPECT_TRUE(fs::exists(crashed.path / "epoch_00000.dnsw"));
    EXPECT_FALSE(fs::exists(crashed.path / "epoch_00001.dnsw"));

    // Resume in a fresh "process" (fresh world, same seed): epoch 0 loads
    // from the store, epochs 1-2 re-run, and the masked report matches
    // the uninterrupted run byte for byte.
    const campaign::CampaignResult resumed =
        run_campaign(crashed.path.string(), threads, true);
    EXPECT_EQ(resumed.resumed_from, 1u);
    EXPECT_EQ(resumed.to_json(/*mask=*/true), masked);
    // Unmasked, the resume provenance is visible.
    EXPECT_NE(resumed.to_json(/*mask=*/false),
              baseline.to_json(/*mask=*/false));
  }
}

TEST(Campaign, ResumeOfCompleteCampaignRebuildsReportWithoutScanning) {
  ScratchDir dir("campaign_complete_resume");
  const campaign::CampaignResult first =
      run_campaign(dir.path.string(), 2, false);
  const campaign::CampaignResult again =
      run_campaign(dir.path.string(), 2, true);
  // Every epoch came from the store; nothing was re-scanned.
  EXPECT_EQ(again.resumed_from, 3u);
  EXPECT_EQ(again.to_json(true), first.to_json(true));
}

TEST(Campaign, DeltaEpochOnUnchangedWorldIsNearlyFree) {
  ScratchDir dir("campaign_delta_frozen");
  worldgen::GeneratedWorld gen = worldgen::generate_world(world_config());
  campaign::CampaignTargets targets;
  targets.scanner_ip = gen.scanner_ip;
  targets.zone = gen.scan_zone;
  targets.blacklist = &gen.blacklist;
  targets.universe = gen.universe;
  campaign::CampaignConfig config = campaign_config(dir.path.string(), 2);
  config.interval_minutes = 0;  // frozen clock: the world never changes
  config.delta = true;
  config.full_every = 0;
  campaign::CampaignEngine engine(*gen.world, targets, config);
  const campaign::CampaignResult result = engine.run(false);

  ASSERT_EQ(result.epochs.size(), 3u);
  EXPECT_EQ(result.epochs[0].kind, campaign::EpochKind::kFull);
  const std::uint64_t full_probes = result.epochs[0].probed;
  ASSERT_GT(full_probes, 0u);
  for (std::size_t i = 1; i < result.epochs.size(); ++i) {
    const campaign::EpochRecord& epoch = result.epochs[i];
    EXPECT_EQ(epoch.kind, campaign::EpochKind::kDelta);
    // The acceptance gate: a delta epoch on an unchanged world issues at
    // most 10% of a full sweep's probes (here: none at all — no prefix
    // was flagged, the whole population carried forward).
    EXPECT_LE(epoch.probed * 10, full_probes);
    EXPECT_EQ(epoch.population, result.epochs[0].population);
    EXPECT_EQ(epoch.carried_forward, result.epochs[0].population.size());
  }
  EXPECT_LE(result.summary.delta_probe_fraction, 0.10);
}

TEST(Campaign, FullSweepBackstopOverridesDelta) {
  ScratchDir dir("campaign_backstop");
  worldgen::GeneratedWorld gen = worldgen::generate_world(world_config());
  campaign::CampaignTargets targets;
  targets.scanner_ip = gen.scanner_ip;
  targets.zone = gen.scan_zone;
  targets.blacklist = &gen.blacklist;
  targets.universe = gen.universe;
  campaign::CampaignConfig config = campaign_config(dir.path.string(), 2);
  config.epochs = 4;
  config.interval_minutes = 0;
  config.delta = true;
  config.full_every = 2;  // epochs 0 and 2 sweep fully
  campaign::CampaignEngine engine(*gen.world, targets, config);
  const campaign::CampaignResult result = engine.run(false);

  ASSERT_EQ(result.epochs.size(), 4u);
  EXPECT_EQ(result.epochs[0].kind, campaign::EpochKind::kFull);
  EXPECT_EQ(result.epochs[1].kind, campaign::EpochKind::kDelta);
  EXPECT_EQ(result.epochs[2].kind, campaign::EpochKind::kFull);
  EXPECT_EQ(result.epochs[3].kind, campaign::EpochKind::kDelta);
  EXPECT_EQ(result.epochs[2].probed, result.epochs[0].probed);
}

TEST(Campaign, CorruptTailFallsBackOneEpochAndStillMatches) {
  ScratchDir dir("campaign_corrupt_fallback");
  const campaign::CampaignResult baseline =
      run_campaign(dir.path.string(), 2, false);
  const std::string masked = baseline.to_json(true);

  // Truncate the last epoch's file: resume must detect it, quarantine it,
  // fall back to epoch 1, re-run epoch 2, and still match byte-for-byte.
  const fs::path last = dir.path / "epoch_00002.dnsw";
  ASSERT_TRUE(fs::exists(last));
  fs::resize_file(last, fs::file_size(last) / 2);

  const campaign::CampaignResult resumed =
      run_campaign(dir.path.string(), 2, true);
  EXPECT_EQ(resumed.resumed_from, 2u);
  ASSERT_EQ(resumed.store_issues.size(), 1u);
  EXPECT_EQ(resumed.store_issues[0].file, "epoch_00002.dnsw");
  EXPECT_EQ(resumed.to_json(true), masked);
  EXPECT_TRUE(fs::exists(dir.path / "epoch_00002.dnsw.corrupt"));
}

TEST(Campaign, ConfigHashCoversCampaignShape) {
  worldgen::GeneratedWorld gen = worldgen::generate_world(world_config());
  campaign::CampaignTargets targets;
  targets.scanner_ip = gen.scanner_ip;
  targets.zone = gen.scan_zone;
  targets.blacklist = &gen.blacklist;
  targets.universe = gen.universe;
  campaign::CampaignConfig config = campaign_config("unused", 2);
  const std::uint64_t base =
      campaign::CampaignEngine(*gen.world, targets, config).config_hash();

  campaign::CampaignConfig changed = config;
  changed.interval_minutes += 1440;
  EXPECT_NE(campaign::CampaignEngine(*gen.world, targets, changed)
                .config_hash(),
            base);

  // Thread count is execution shape, not campaign identity: a resumed
  // campaign may run with a different thread count.
  campaign::CampaignConfig threads = config;
  threads.threads = 8;
  EXPECT_EQ(campaign::CampaignEngine(*gen.world, targets, threads)
                .config_hash(),
            base);
}

}  // namespace
}  // namespace dnswild
