#include "util/table.h"

#include <gtest/gtest.h>

namespace dnswild::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table table({"Name", "Count"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string text = table.render();
  EXPECT_NE(text.find("Name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  // Header, underline, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(Table, RightAlignment) {
  Table table({"N"}, {Align::kRight});
  table.add_row({"7"});
  table.add_row({"123"});
  const std::string text = table.render();
  // "7" must be padded to width 3.
  EXPECT_NE(text.find("  7"), std::string::npos);
}

TEST(Table, MissingCellsRenderEmpty) {
  Table table({"A", "B"});
  table.add_row({"x"});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_NO_THROW(table.render());
}

TEST(Table, ExtraCellsDropped) {
  Table table({"A"});
  table.add_row({"x", "overflow"});
  const std::string text = table.render();
  EXPECT_EQ(text.find("overflow"), std::string::npos);
}

TEST(Commas, Formatting) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(26820486), "26,820,486");
  EXPECT_EQ(with_commas(1234567890123ULL), "1,234,567,890,123");
}

TEST(Commas, SignedFormatting) {
  EXPECT_EQ(with_commas_signed(-421371), "-421,371");
  EXPECT_EQ(with_commas_signed(161808), "+161,808");
  EXPECT_EQ(with_commas_signed(0), "+0");
}

TEST(Percent, OneDecimal) {
  EXPECT_EQ(pct1(14.23), "14.2");
  EXPECT_EQ(pct1(0.0), "0.0");
  EXPECT_EQ(pct1(99.95), "100.0");
  EXPECT_EQ(frac_pct1(0.522), "52.2");
}

}  // namespace
}  // namespace dnswild::util
