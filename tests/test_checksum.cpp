// CRC-32 (reflected IEEE 802.3 polynomial) — the checksum guarding the
// campaign epoch store's sections and file trailer.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "util/checksum.h"

namespace dnswild {
namespace {

TEST(Crc32, MatchesKnownAnswers) {
  // The classic check value for this polynomial/reflection convention.
  const char* check = "123456789";
  EXPECT_EQ(util::crc32(check, std::strlen(check)), 0xCBF43926u);
  EXPECT_EQ(util::crc32("", 0), 0x00000000u);
  const char* a = "a";
  EXPECT_EQ(util::crc32(a, 1), 0xE8B7BE43u);
}

TEST(Crc32, SeedChainingEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = util::crc32(data.data(), data.size());
  for (std::size_t split : {std::size_t{1}, std::size_t{9}, data.size() - 1}) {
    const std::uint32_t first = util::crc32(data.data(), split);
    const std::uint32_t chained =
        util::crc32(data.data() + split, data.size() - split, first);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::string data = "epoch store payload bytes";
  const std::uint32_t clean = util::crc32(data.data(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<char>(1 << bit);
      EXPECT_NE(util::crc32(data.data(), data.size()), clean);
      data[i] ^= static_cast<char>(1 << bit);
    }
  }
}

}  // namespace
}  // namespace dnswild
