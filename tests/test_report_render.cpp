#include "core/report.h"

#include <gtest/gtest.h>

namespace dnswild::core {
namespace {

StudyReport synthetic_report() {
  StudyReport report;
  report.table5.columns.assign(DomainSet::table5_categories().size(), {});
  report.table5.columns[1][static_cast<int>(Label::kCensorship)] =
      Table5Cell{88.6, 91.3};  // the Adult column headline

  CategoryPrefilterRow row;
  row.category = SiteCategory::kMail;
  row.tuples = 24451;
  row.legitimate_pct = 85.8;
  row.no_answer_pct = 6.0;
  row.unknown_pct = 0.6;
  report.prefilter_by_category.push_back(row);

  report.censorship.censorship_tuples = 12345;
  report.censorship.dual_response_tuples = 678;
  report.censorship.landing_ips = {net::Ipv4(1, 2, 3, 4)};
  report.censorship.landing_countries = {"ID", "TR"};
  report.censorship.censoring_by_country = {{"CN", 90}, {"IR", 10}};
  CountryCompliance compliance;
  compliance.country = "MN";
  compliance.censoring = 789;
  compliance.responding = 1000;
  report.censorship.compliance.push_back(compliance);

  report.social_geo.all = {{"US", 10}, {"CN", 5}};
  report.social_geo.unexpected = {{"CN", 5}};

  report.cases.paypal_phish_resolvers = 176;
  report.cases.paypal_phish_ips = 16;

  ModificationCluster cluster;
  cluster.added = {"script"};
  cluster.tuples = 42;
  cluster.resolvers = 7;
  cluster.example_domain = "ads.example";
  report.modifications.compared_pages = 100;
  report.modifications.modified_pages = 5;
  report.modifications.clusters.push_back(cluster);
  return report;
}

TEST(RenderTable5, CellsFormattedAsAvgMax) {
  const std::string text = render_table5(synthetic_report());
  EXPECT_NE(text.find("Adult"), std::string::npos);
  EXPECT_NE(text.find("88.6 (91.3)"), std::string::npos);
  EXPECT_NE(text.find("Censorship"), std::string::npos);
  // One row per label, plus header + underline.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 7 + 2);
}

TEST(RenderPrefilter, RowsAndColumns) {
  const std::string text = render_prefilter(synthetic_report());
  EXPECT_NE(text.find("MX"), std::string::npos);
  EXPECT_NE(text.find("24,451"), std::string::npos);
  EXPECT_NE(text.find("85.8"), std::string::npos);
}

TEST(RenderCensorship, SummaryAndCompliance) {
  const std::string text = render_censorship(synthetic_report());
  EXPECT_NE(text.find("12,345"), std::string::npos);
  EXPECT_NE(text.find("678"), std::string::npos);
  EXPECT_NE(text.find("MN"), std::string::npos);
  EXPECT_NE(text.find("78.9"), std::string::npos);  // 789/1000 coverage
  EXPECT_NE(text.find("CN"), std::string::npos);
}

TEST(RenderSocialGeo, TwoPanels) {
  const std::string text = render_social_geo(synthetic_report());
  EXPECT_NE(text.find("(a) All responses"), std::string::npos);
  EXPECT_NE(text.find("(b) Unexpected responses"), std::string::npos);
  // CN holds 100% of the unexpected panel.
  EXPECT_NE(text.find("100.0"), std::string::npos);
}

TEST(RenderCaseStudies, PaypalRow) {
  const std::string text = render_case_studies(synthetic_report());
  EXPECT_NE(text.find("Phishing (PayPal kit)"), std::string::npos);
  EXPECT_NE(text.find("176"), std::string::npos);
  EXPECT_NE(text.find("16"), std::string::npos);
}

TEST(RenderModifications, ClusterRow) {
  const std::string text = render_modifications(synthetic_report());
  EXPECT_NE(text.find("script"), std::string::npos);
  EXPECT_NE(text.find("ads.example"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(RenderModifications, EmptyDeltasRenderDash) {
  StudyReport report = synthetic_report();
  report.modifications.clusters[0].added.clear();
  const std::string text = render_modifications(report);
  EXPECT_NE(text.find('-'), std::string::npos);
}

}  // namespace
}  // namespace dnswild::core
