// Complementary permutation tests (core coverage lives in test_lfsr.cpp).
#include "scan/permute.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace dnswild::scan {
namespace {

TEST(UniversePermutation, SinglePrefix) {
  UniversePermutation permutation({net::Cidr(net::Ipv4(5, 0, 0, 0), 28)}, 9);
  EXPECT_EQ(permutation.size(), 16u);
  std::set<std::uint32_t> seen;
  net::Ipv4 ip;
  while (permutation.next(ip)) seen.insert(ip.value());
  EXPECT_EQ(seen.size(), 16u);
}

TEST(UniversePermutation, EmptyUniverse) {
  UniversePermutation permutation({}, 9);
  EXPECT_EQ(permutation.size(), 0u);
  net::Ipv4 ip;
  EXPECT_FALSE(permutation.next(ip));
}

TEST(UniversePermutation, SingleAddress) {
  UniversePermutation permutation({net::Cidr(net::Ipv4(7, 7, 7, 7), 32)}, 1);
  net::Ipv4 ip;
  ASSERT_TRUE(permutation.next(ip));
  EXPECT_EQ(ip, net::Ipv4(7, 7, 7, 7));
  EXPECT_FALSE(permutation.next(ip));
}

TEST(UniversePermutation, DifferentSeedsDifferentOrder) {
  const std::vector<net::Cidr> universe = {
      net::Cidr(net::Ipv4(5, 0, 0, 0), 20)};
  UniversePermutation a(universe, 1);
  UniversePermutation b(universe, 99);
  net::Ipv4 ip_a, ip_b;
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(a.next(ip_a));
    ASSERT_TRUE(b.next(ip_b));
    if (ip_a == ip_b) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(UniversePermutation, SameSeedSameOrder) {
  const std::vector<net::Cidr> universe = {
      net::Cidr(net::Ipv4(5, 0, 0, 0), 24),
      net::Cidr(net::Ipv4(6, 0, 0, 0), 24)};
  UniversePermutation a(universe, 42);
  UniversePermutation b(universe, 42);
  net::Ipv4 ip_a, ip_b;
  while (a.next(ip_a)) {
    ASSERT_TRUE(b.next(ip_b));
    EXPECT_EQ(ip_a, ip_b);
  }
  EXPECT_FALSE(b.next(ip_b));
}

TEST(GenericLfsr, TapsTableKnownEntry) {
  // Order 16 uses taps 16,15,13,4 (XAPP052).
  EXPECT_EQ(GenericLfsr::taps_for_order(16),
            (1u << 15) | (1u << 14) | (1u << 12) | (1u << 3));
}

TEST(SobolPermutation, BijectiveOverNonPowerOfTwoCount) {
  // 100 needs a 7-bit period (128); the 28 out-of-range candidates must
  // be skipped, leaving every index in [0, 100) exactly once.
  SobolPermutation permutation(100, 31);
  std::set<std::uint64_t> seen;
  std::uint64_t value;
  while (permutation.next(value)) {
    EXPECT_LT(value, 100u);
    EXPECT_TRUE(seen.insert(value).second) << "duplicate " << value;
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(SobolPermutation, DeterministicPerSeedAndSeedSensitive) {
  SobolPermutation a(512, 5);
  SobolPermutation b(512, 5);
  SobolPermutation c(512, 6);
  std::uint64_t va, vb, vc;
  int differs = 0;
  for (int i = 0; i < 512; ++i) {
    ASSERT_TRUE(a.next(va));
    ASSERT_TRUE(b.next(vb));
    ASSERT_TRUE(c.next(vc));
    EXPECT_EQ(va, vb);
    if (va != vc) ++differs;
  }
  EXPECT_GT(differs, 256);  // the digital shift rearranges most positions
}

TEST(SobolPermutation, PrefixesAreStratified) {
  // The low-discrepancy property the ablation leans on: over a power-of-
  // two count the first 2^k points land exactly one per 1/2^k interval,
  // for every k — here the first 64 of 256 hit each quartile 16 times.
  SobolPermutation permutation(256, 91);
  std::array<int, 4> quartiles{};
  std::uint64_t value;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(permutation.next(value));
    ++quartiles[value / 64];
  }
  for (const int count : quartiles) EXPECT_EQ(count, 16);
}

TEST(UniversePermutation, SobolOrderCoversTheUniverse) {
  const std::vector<net::Cidr> universe = {
      net::Cidr(net::Ipv4(5, 0, 0, 0), 24),
      net::Cidr(net::Ipv4(6, 0, 0, 0), 26)};
  UniversePermutation permutation(universe, 17, ScanOrder::kSobol);
  EXPECT_EQ(permutation.size(), 256u + 64u);
  std::set<std::uint32_t> seen;
  net::Ipv4 ip;
  while (permutation.next(ip)) seen.insert(ip.value());
  EXPECT_EQ(seen.size(), 256u + 64u);
}

}  // namespace
}  // namespace dnswild::scan
