#include "resolver/software.h"

#include <gtest/gtest.h>

namespace dnswild::resolver {
namespace {

TEST(SoftwareCatalog, Table3TopRowsPresent) {
  const auto& catalog = software_catalog();
  ASSERT_GE(catalog.size(), 10u);
  // The Table 3 headline row: BIND 9.8.2 at 19.8% of revealing resolvers.
  EXPECT_EQ(catalog[0].banner(), "BIND 9.8.2");
  EXPECT_NEAR(catalog[0].reveal_share, 0.198, 1e-9);
  EXPECT_TRUE(catalog[0].vulnerable_bypass);
  EXPECT_TRUE(catalog[0].vulnerable_dos);
}

TEST(SoftwareCatalog, SharesSumToOne) {
  double total = 0;
  for (const auto& profile : software_catalog()) total += profile.reveal_share;
  EXPECT_NEAR(total, 1.0, 0.01);
}

TEST(SoftwareCatalog, BindTotalsMatchPaper) {
  // §2.4: BIND runs on 60.2% of the version-revealing resolvers.
  double bind = 0;
  for (const auto& profile : software_catalog()) {
    if (profile.name == "BIND") bind += profile.reveal_share;
  }
  EXPECT_NEAR(bind, 0.602, 0.01);
}

TEST(SoftwareCatalog, AllTop10AreDosVulnerableExceptPowerDns) {
  // §2.4: "all Top 10 software versions are susceptible to DoS attacks"
  // except the table marks PowerDNS 3.5.3 with memory overflow only.
  const auto& catalog = software_catalog();
  for (std::size_t i = 0; i < 10; ++i) {
    if (catalog[i].name == "PowerDNS") continue;
    EXPECT_TRUE(catalog[i].vulnerable_dos) << catalog[i].banner();
  }
}

TEST(ChaosMix, MatchesSection24) {
  const ChaosPopulationMix mix = chaos_population_mix();
  EXPECT_NEAR(mix.refused_or_servfail, 0.427, 1e-9);
  EXPECT_NEAR(mix.noerror_empty, 0.046, 1e-9);
  EXPECT_NEAR(mix.hidden_string, 0.188, 1e-9);
  EXPECT_NEAR(mix.revealing, 0.339, 1e-9);
  EXPECT_NEAR(mix.refused_or_servfail + mix.noerror_empty +
                  mix.hidden_string + mix.revealing,
              1.0, 1e-9);
}

TEST(HiddenStrings, NonEmptyAndNotParseable) {
  const auto& strings = hidden_version_strings();
  EXPECT_GE(strings.size(), 5u);
  for (const auto& text : strings) EXPECT_FALSE(text.empty());
}

}  // namespace
}  // namespace dnswild::resolver
