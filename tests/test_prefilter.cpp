#include "core/prefilter.h"

#include <gtest/gtest.h>

#include "http/server.h"

namespace dnswild::core {
namespace {

// Fixture: a world with one legitimately hosted domain (AS 1), an rDNS-
// confirmed secondary address (AS 2), a CDN edge with a valid certificate
// (AS 3), and an unrelated attacker address (AS 4).
class PrefilterTest : public ::testing::Test {
 protected:
  PrefilterTest() : world_(1), domains_(DomainSet::study_set()) {
    auto& asdb = world_.asdb();
    asdb.add_as({1, "Origin Hosting", "US", net::AsKind::kHosting});
    asdb.add_as({2, "Secondary Hosting", "DE", net::AsKind::kHosting});
    asdb.add_as({3, "CDN", "SG", net::AsKind::kCdn});
    asdb.add_as({4, "Attacker", "RU", net::AsKind::kHosting});
    asdb.add_prefix(*net::Cidr::parse("1.0.0.0/24"), 1);
    asdb.add_prefix(*net::Cidr::parse("2.0.0.0/24"), 2);
    asdb.add_prefix(*net::Cidr::parse("3.0.0.0/24"), 3);
    asdb.add_prefix(*net::Cidr::parse("4.0.0.0/24"), 4);

    // paypal.com's trusted answer points to AS 1.
    registry_.add_domain("paypal.com", {net::Ipv4(1, 0, 0, 10)}, 300);
    // A secondary address with forward-confirmed rDNS in AS 2.
    world_.rdns().set(net::Ipv4(2, 0, 0, 10), "host9.paypal.com");
    registry_.add_a_record("host9.paypal.com", net::Ipv4(2, 0, 0, 10));
    // An unconfirmed rDNS (name resembles, but no A record backs it).
    world_.rdns().set(net::Ipv4(4, 0, 0, 20), "fake.paypal.com");
    // A CDN edge serving a valid certificate for the domain.
    net::HostConfig host_config;
    host_config.attachment.ip = net::Ipv4(3, 0, 0, 10);
    const net::HostId id = world_.add_host(host_config);
    auto server = std::make_unique<http::WebServer>();
    net::Certificate cert;
    cert.common_name = "paypal.com";
    server->add_vhost("paypal.com", http::serve_body("x"), cert);
    server->set_default_certificate(cert);  // real edges answer without SNI
    world_.set_tcp_service(id, 443, std::move(server));

    paypal_ = *domains_.find("paypal.com");
    nx_ = *domains_.find("amason.com");
  }

  scan::TupleRecord record_with(std::vector<net::Ipv4> ips,
                                dns::RCode rcode = dns::RCode::kNoError,
                                bool responded = true) {
    scan::TupleRecord record;
    record.responded = responded;
    record.rcode = rcode;
    record.ips = std::move(ips);
    return record;
  }

  Prefilter make_prefilter(PrefilterConfig config = {}) {
    return Prefilter(world_, registry_, domains_, net::Ipv4(9, 0, 0, 1),
                     std::move(config));
  }

  net::World world_;
  resolver::AuthRegistry registry_;
  DomainSet domains_;
  StudyDomain paypal_;
  StudyDomain nx_;
};

TEST_F(PrefilterTest, AsRuleAcceptsTrustedNetwork) {
  Prefilter prefilter = make_prefilter();
  // A different address in the SAME AS as the trusted answer is accepted.
  EXPECT_EQ(prefilter.judge(record_with({net::Ipv4(1, 0, 0, 99)}), paypal_),
            TupleVerdict::kLegitimate);
  EXPECT_EQ(prefilter.stats().accepted_by_as, 1u);
}

TEST_F(PrefilterTest, RdnsRuleNeedsForwardConfirmation) {
  Prefilter prefilter = make_prefilter();
  EXPECT_EQ(prefilter.judge(record_with({net::Ipv4(2, 0, 0, 10)}), paypal_),
            TupleVerdict::kLegitimate);
  EXPECT_EQ(prefilter.stats().accepted_by_rdns, 1u);
  // rDNS that resembles the domain but does not forward-confirm: an
  // attacker can set any PTR (§3.4) — must stay unknown.
  EXPECT_EQ(prefilter.judge(record_with({net::Ipv4(4, 0, 0, 20)}), paypal_),
            TupleVerdict::kUnknown);
}

TEST_F(PrefilterTest, CertRuleAcceptsCdnEdge) {
  Prefilter prefilter = make_prefilter();
  EXPECT_EQ(prefilter.judge(record_with({net::Ipv4(3, 0, 0, 10)}), paypal_),
            TupleVerdict::kLegitimate);
  EXPECT_EQ(prefilter.stats().accepted_by_cert, 1u);
}

TEST_F(PrefilterTest, NonSniCdnCommonNameRule) {
  // An off-net CDN cache that serves only its provider default certificate
  // (no per-customer SNI cert): accepted through the §3.4 "largest CDN
  // providers" common-name rule.
  net::HostConfig host_config;
  host_config.attachment.ip = net::Ipv4(3, 0, 0, 20);
  const net::HostId id = world_.add_host(host_config);
  auto server = std::make_unique<http::WebServer>();
  net::Certificate cdn_default;
  cdn_default.common_name = "*.edge.globalcdn.example";
  server->set_default_certificate(cdn_default);
  world_.set_tcp_service(id, 443, std::move(server));

  Prefilter prefilter = make_prefilter();
  EXPECT_EQ(prefilter.judge(record_with({net::Ipv4(3, 0, 0, 20)}), paypal_),
            TupleVerdict::kLegitimate);
  EXPECT_EQ(prefilter.stats().accepted_by_cert, 1u);

  // An unknown common name on the default certificate is NOT accepted.
  net::HostConfig other_config;
  other_config.attachment.ip = net::Ipv4(3, 0, 0, 21);
  const net::HostId other_id = world_.add_host(other_config);
  auto other_server = std::make_unique<http::WebServer>();
  net::Certificate unknown_cn;
  unknown_cn.common_name = "*.cdn.attacker.example";
  other_server->set_default_certificate(unknown_cn);
  world_.set_tcp_service(other_id, 443, std::move(other_server));
  EXPECT_EQ(prefilter.judge(record_with({net::Ipv4(3, 0, 0, 21)}), paypal_),
            TupleVerdict::kUnknown);
}

TEST_F(PrefilterTest, VerdictCacheAvoidsRepeatedHandshakes) {
  Prefilter prefilter = make_prefilter();
  // The same (domain, ip) pair judged many times attributes its rule once.
  for (int i = 0; i < 5; ++i) {
    prefilter.judge(record_with({net::Ipv4(3, 0, 0, 10)}), paypal_);
  }
  EXPECT_EQ(prefilter.stats().accepted_by_cert, 1u);
}

TEST_F(PrefilterTest, SniOnlyRelayIsNotAccepted) {
  // A transparent TLS relay forwards the origin's certificate when SNI
  // tells it where to route, but cannot complete a non-SNI handshake; the
  // cert rule must leave it unknown (it is a §4.3 proxy, not an origin).
  net::HostConfig host_config;
  host_config.attachment.ip = net::Ipv4(4, 0, 0, 40);
  const net::HostId id = world_.add_host(host_config);
  const http::CertOracle certs =
      [](const std::string& host) -> std::optional<net::Certificate> {
    net::Certificate cert;
    cert.common_name = host;
    return cert;
  };
  world_.set_tcp_service(
      id, 443,
      std::make_unique<http::ProxyServer>(
          [](const http::HttpRequest&) { return std::nullopt; }, certs,
          /*tls_passthrough=*/true));
  Prefilter prefilter = make_prefilter();
  EXPECT_EQ(prefilter.judge(record_with({net::Ipv4(4, 0, 0, 40)}), paypal_),
            TupleVerdict::kUnknown);
}

TEST_F(PrefilterTest, UnknownAddressStaysUnknown) {
  Prefilter prefilter = make_prefilter();
  EXPECT_EQ(prefilter.judge(record_with({net::Ipv4(4, 0, 0, 9)}), paypal_),
            TupleVerdict::kUnknown);
}

TEST_F(PrefilterTest, MixedAnswerSetIsUnknown) {
  // One good address + one bad address: must NOT be filtered (§3.4: never
  // risk hiding a bogus answer).
  Prefilter prefilter = make_prefilter();
  EXPECT_EQ(prefilter.judge(record_with({net::Ipv4(1, 0, 0, 10),
                                         net::Ipv4(4, 0, 0, 9)}),
                            paypal_),
            TupleVerdict::kUnknown);
}

TEST_F(PrefilterTest, RuleAblation) {
  // With the AS rule disabled, the same-AS address must fall through to
  // the remaining rules and end up unknown.
  PrefilterConfig no_as;
  no_as.use_as_rule = false;
  Prefilter prefilter = make_prefilter(no_as);
  EXPECT_EQ(prefilter.judge(record_with({net::Ipv4(1, 0, 0, 99)}), paypal_),
            TupleVerdict::kUnknown);

  PrefilterConfig no_cert;
  no_cert.use_cert_rule = false;
  Prefilter prefilter2 = make_prefilter(no_cert);
  EXPECT_EQ(prefilter2.judge(record_with({net::Ipv4(3, 0, 0, 10)}), paypal_),
            TupleVerdict::kUnknown);
}

TEST_F(PrefilterTest, NxDomainHandling) {
  Prefilter prefilter = make_prefilter();
  // Honest outcomes for NX names.
  EXPECT_EQ(prefilter.judge(record_with({}, dns::RCode::kNxDomain), nx_),
            TupleVerdict::kLegitimate);
  EXPECT_EQ(prefilter.judge(record_with({}, dns::RCode::kNoError), nx_),
            TupleVerdict::kLegitimate);
  // An address for an NX name is monetization (§4.2).
  EXPECT_EQ(prefilter.judge(record_with({net::Ipv4(4, 0, 0, 9)}), nx_),
            TupleVerdict::kUnknown);
  EXPECT_EQ(prefilter.judge(record_with({}, dns::RCode::kServFail), nx_),
            TupleVerdict::kNoAnswer);
}

TEST_F(PrefilterTest, ErrorAndEmptyAnswers) {
  Prefilter prefilter = make_prefilter();
  EXPECT_EQ(prefilter.judge(record_with({}, dns::RCode::kRefused), paypal_),
            TupleVerdict::kNoAnswer);
  EXPECT_EQ(prefilter.judge(record_with({}, dns::RCode::kNoError), paypal_),
            TupleVerdict::kNoAnswer);
  EXPECT_EQ(prefilter.judge(record_with({}, dns::RCode::kNoError, false),
                            paypal_),
            TupleVerdict::kUnresponsive);
}

TEST_F(PrefilterTest, BulkRunAccumulatesStats) {
  Prefilter prefilter = make_prefilter();
  std::vector<scan::TupleRecord> records;
  std::vector<StudyDomain> domains = {paypal_};
  auto good = record_with({net::Ipv4(1, 0, 0, 10)});
  good.domain_index = 0;
  auto bad = record_with({net::Ipv4(4, 0, 0, 9)});
  bad.domain_index = 0;
  auto silent = record_with({}, dns::RCode::kNoError, false);
  silent.domain_index = 0;
  records = {good, bad, silent};
  const auto verdicts = prefilter.run(records, domains);
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_EQ(prefilter.stats().tuples, 3u);
  EXPECT_EQ(prefilter.stats().legitimate, 1u);
  EXPECT_EQ(prefilter.stats().unknown, 1u);
  EXPECT_EQ(prefilter.stats().unresponsive, 1u);
}

TEST_F(PrefilterTest, CdnRegionalViewsWidenTheWhitelist) {
  // A CDN domain answering differently per trusted region: addresses from
  // both regional ASes must be accepted.
  registry_.add_cdn_domain("cdn-site.example", {net::Ipv4(1, 0, 0, 50)},
                           {{"DE", {net::Ipv4(2, 0, 0, 50)}},
                            {"US", {net::Ipv4(3, 0, 0, 50)}}},
                           60);
  StudyDomain cdn_domain{"cdn-site.example", SiteCategory::kAlexa, true,
                         false};
  PrefilterConfig config;
  config.trusted_regions = {"DE", "US"};
  Prefilter prefilter = make_prefilter(config);
  EXPECT_EQ(prefilter.judge(record_with({net::Ipv4(2, 0, 0, 51)}),
                            cdn_domain),
            TupleVerdict::kLegitimate);
  EXPECT_EQ(prefilter.judge(record_with({net::Ipv4(3, 0, 0, 51)}),
                            cdn_domain),
            TupleVerdict::kLegitimate);
  // The default view's AS 1 is NOT in any trusted region's answer: those
  // regions resolved to AS 2/3 only.
  EXPECT_EQ(prefilter.judge(record_with({net::Ipv4(4, 0, 0, 51)}),
                            cdn_domain),
            TupleVerdict::kUnknown);
}

}  // namespace
}  // namespace dnswild::core
