#include "core/export.h"

#include <gtest/gtest.h>

namespace dnswild::core {
namespace {

StudyReport tiny_report() {
  StudyReport report;
  report.table5.columns.assign(DomainSet::table5_categories().size(), {});
  report.table5.columns[0][static_cast<int>(Label::kCensorship)] =
      Table5Cell{12.5, 96.25};
  CategoryPrefilterRow row;
  row.category = SiteCategory::kAds;
  row.tuples = 100;
  row.legitimate_pct = 90.0;
  row.no_answer_pct = 5.0;
  row.unknown_pct = 5.0;
  report.prefilter_by_category.push_back(row);
  CountryCompliance compliance;
  compliance.country = "TR";
  compliance.censoring = 9;
  compliance.responding = 10;
  report.censorship.compliance.push_back(compliance);
  report.social_geo.all = {{"CN", 100}, {"US", 50}};
  report.social_geo.unexpected = {{"CN", 90}};
  return report;
}

TEST(CsvQuote, Rfc4180Rules) {
  EXPECT_EQ(csv_quote("plain"), "plain");
  EXPECT_EQ(csv_quote("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_quote("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csv_quote("multi\nline"), "\"multi\nline\"");
  EXPECT_EQ(csv_quote(""), "");
}

TEST(Export, Table5CsvShape) {
  const std::string csv = table5_csv(tiny_report());
  EXPECT_NE(csv.find("label,category,avg_pct,max_pct\n"), std::string::npos);
  EXPECT_NE(csv.find("Censorship,Ads,12.5000,96.2500"), std::string::npos);
  // 7 labels x 14 categories + header.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7 * 14 + 1);
}

TEST(Export, PrefilterCsv) {
  const std::string csv = prefilter_csv(tiny_report());
  EXPECT_NE(csv.find("Ads,100,90.0000,5.0000,5.0000"), std::string::npos);
}

TEST(Export, ComplianceCsv) {
  const std::string csv = compliance_csv(tiny_report());
  EXPECT_NE(csv.find("TR,9,10,90.0000"), std::string::npos);
}

TEST(Export, SocialGeoCsv) {
  const std::string csv = social_geo_csv(tiny_report());
  EXPECT_NE(csv.find("all,CN,100"), std::string::npos);
  EXPECT_NE(csv.find("unexpected,CN,90"), std::string::npos);
  EXPECT_EQ(csv.find("unexpected,US"), std::string::npos);
}

TEST(Export, EmptyReportDoesNotCrash) {
  StudyReport report;
  report.table5.columns.assign(DomainSet::table5_categories().size(), {});
  EXPECT_FALSE(table5_csv(report).empty());
  EXPECT_FALSE(prefilter_csv(report).empty());
  EXPECT_FALSE(compliance_csv(report).empty());
  EXPECT_FALSE(social_geo_csv(report).empty());
}

}  // namespace
}  // namespace dnswild::core
