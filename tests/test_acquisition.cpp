#include "core/acquisition.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "http/server.h"

namespace dnswild::core {
namespace {

using test::make_mini_world;
using test::MiniWorld;

class AcquisitionTest : public ::testing::Test {
 protected:
  AcquisitionTest() : mini_(make_mini_world()) {
    // AS context for answer-address classification.
    mini_.world->asdb().add_as({1, "ISP", "US", net::AsKind::kBroadbandIsp});
    mini_.world->asdb().add_prefix(*net::Cidr::parse("1.0.0.0/24"), 1);
    mini_.world->asdb().add_as({2, "Hosting", "DE", net::AsKind::kHosting});
    mini_.world->asdb().add_prefix(*net::Cidr::parse("5.0.0.0/24"), 2);

    // Web content at 5.0.0.5 for any Host.
    net::HostConfig host_config;
    host_config.attachment.ip = net::Ipv4(5, 0, 0, 5);
    const net::HostId id = mini_.world->add_host(host_config);
    auto server = std::make_unique<http::WebServer>();
    server->set_default_handler(
        http::serve_body("<html><title>target</title></html>"));
    mini_.world->set_tcp_service(id, 80, std::move(server));

    // Mail banners at 5.0.0.6.
    net::HostConfig mail_config;
    mail_config.attachment.ip = net::Ipv4(5, 0, 0, 6);
    const net::HostId mail_id = mini_.world->add_host(mail_config);
    mini_.world->set_tcp_service(
        mail_id, 25,
        std::make_unique<http::BannerService>("220 smtp ready\r\n"));

    // A legit domain with hosting + content for ground truth.
    mini_.registry->add_domain("site.example", {net::Ipv4(5, 0, 0, 5)}, 60);
    // An honest resolver used by resolve_at.
    resolver::ResolverConfig honest;
    honest.seed = 1;
    mini_.add_resolver(net::Ipv4(1, 0, 0, 10), honest);
  }

  MiniWorld mini_;
};

TEST_F(AcquisitionTest, ResolveAtQueriesTheResolver) {
  Acquisition acquisition(*mini_.world, *mini_.registry,
                          net::Ipv4(9, 0, 0, 2));
  const auto ip =
      acquisition.resolve_at(net::Ipv4(1, 0, 0, 10), "good.example");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(*ip, net::Ipv4(5, 5, 5, 5));
  EXPECT_FALSE(acquisition.resolve_at(net::Ipv4(1, 0, 0, 10), "nope.example")
                   .has_value());
  EXPECT_FALSE(acquisition.resolve_at(net::Ipv4(1, 0, 0, 99), "good.example")
                   .has_value());
}

TEST_F(AcquisitionTest, FetchUnknownOnlyTouchesUnknownVerdicts) {
  std::vector<scan::TupleRecord> records(3);
  for (auto& record : records) {
    record.responded = true;
    record.rcode = dns::RCode::kNoError;
    record.ips = {net::Ipv4(5, 0, 0, 5)};
    record.resolver_id = 0;
    record.domain_index = 0;
  }
  const std::vector<TupleVerdict> verdicts = {TupleVerdict::kLegitimate,
                                              TupleVerdict::kUnknown,
                                              TupleVerdict::kNoAnswer};
  std::vector<StudyDomain> domains = {
      StudyDomain{"site.example", SiteCategory::kAlexa, true, false}};

  Acquisition acquisition(*mini_.world, *mini_.registry,
                          net::Ipv4(9, 0, 0, 2));
  const auto pages = acquisition.fetch_unknown(records, verdicts, domains,
                                               {net::Ipv4(1, 0, 0, 10)});
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_EQ(pages[0].record_index, 1u);
  EXPECT_TRUE(pages[0].connected);
  EXPECT_NE(pages[0].body.find("target"), std::string::npos);
  EXPECT_EQ(pages[0].body_hash, util::fnv1a(pages[0].body));
}

TEST_F(AcquisitionTest, LanAndSameAsClassification) {
  std::vector<scan::TupleRecord> records(2);
  records[0].responded = true;
  records[0].ips = {net::Ipv4(192, 168, 1, 1)};  // LAN answer
  records[1].responded = true;
  records[1].ips = {net::Ipv4(1, 0, 0, 77)};  // same AS as the resolver
  const std::vector<TupleVerdict> verdicts = {TupleVerdict::kUnknown,
                                              TupleVerdict::kUnknown};
  std::vector<StudyDomain> domains = {
      StudyDomain{"site.example", SiteCategory::kAlexa, true, false}};
  Acquisition acquisition(*mini_.world, *mini_.registry,
                          net::Ipv4(9, 0, 0, 2));
  const auto pages = acquisition.fetch_unknown(records, verdicts, domains,
                                               {net::Ipv4(1, 0, 0, 10)});
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_TRUE(pages[0].lan_ip);
  EXPECT_FALSE(pages[0].connected);  // LAN space is unrouted in the world
  EXPECT_TRUE(pages[1].same_as_as_resolver);
}

TEST_F(AcquisitionTest, MailBannersForMxTuples) {
  std::vector<scan::TupleRecord> records(1);
  records[0].responded = true;
  records[0].ips = {net::Ipv4(5, 0, 0, 6)};
  const std::vector<TupleVerdict> verdicts = {TupleVerdict::kUnknown};
  std::vector<StudyDomain> domains = {
      StudyDomain{"smtp.gmail.com", SiteCategory::kMail, true, true}};
  Acquisition acquisition(*mini_.world, *mini_.registry,
                          net::Ipv4(9, 0, 0, 2));
  const auto pages = acquisition.fetch_unknown(records, verdicts, domains,
                                               {net::Ipv4(1, 0, 0, 10)});
  ASSERT_EQ(pages.size(), 1u);
  ASSERT_EQ(pages[0].mail_banners.size(), 1u);
  EXPECT_EQ(pages[0].mail_banners[0].first, 25);
  EXPECT_EQ(pages[0].mail_banners[0].second, "220 smtp ready\r\n");
  EXPECT_TRUE(pages[0].connected);
}

TEST_F(AcquisitionTest, GroundTruthFetch) {
  std::vector<StudyDomain> domains = {
      StudyDomain{"site.example", SiteCategory::kAlexa, true, false},
      StudyDomain{"amason.com", SiteCategory::kNx, false, false}};
  Acquisition acquisition(*mini_.world, *mini_.registry,
                          net::Ipv4(9, 0, 0, 2));
  const auto ground_truth = acquisition.fetch_ground_truth(domains);
  ASSERT_EQ(ground_truth.size(), 1u);  // NX domains have no ground truth
  EXPECT_EQ(ground_truth[0].domain, "site.example");
  EXPECT_EQ(ground_truth[0].ip, net::Ipv4(5, 0, 0, 5));
  EXPECT_FALSE(ground_truth[0].body.empty());
  EXPECT_FALSE(ground_truth[0].features.tag_sequence.empty());
}

}  // namespace
}  // namespace dnswild::core
