#include "net/ip.h"

#include <gtest/gtest.h>

namespace dnswild::net {
namespace {

TEST(Ipv4, OctetConstruction) {
  const Ipv4 ip(192, 168, 1, 42);
  EXPECT_EQ(ip.value(), 0xc0a8012au);
  EXPECT_EQ(ip.octet(0), 192);
  EXPECT_EQ(ip.octet(1), 168);
  EXPECT_EQ(ip.octet(2), 1);
  EXPECT_EQ(ip.octet(3), 42);
}

TEST(Ipv4, ToString) {
  EXPECT_EQ(Ipv4(0u).to_string(), "0.0.0.0");
  EXPECT_EQ(Ipv4(0xffffffffu).to_string(), "255.255.255.255");
  EXPECT_EQ(Ipv4(8, 8, 8, 8).to_string(), "8.8.8.8");
}

class Ipv4ParseRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(Ipv4ParseRoundTrip, RoundTrips) {
  const auto parsed = Ipv4::parse(GetParam());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_string(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Valid, Ipv4ParseRoundTrip,
                         ::testing::Values("0.0.0.0", "1.2.3.4",
                                           "255.255.255.255", "10.0.0.1",
                                           "198.51.100.200"));

class Ipv4ParseInvalid : public ::testing::TestWithParam<const char*> {};

TEST_P(Ipv4ParseInvalid, Rejected) {
  EXPECT_FALSE(Ipv4::parse(GetParam()).has_value());
}

INSTANTIATE_TEST_SUITE_P(Invalid, Ipv4ParseInvalid,
                         ::testing::Values("", "1.2.3", "1.2.3.4.5",
                                           "256.1.1.1", "1..2.3", "a.b.c.d",
                                           "1.2.3.4 ", " 1.2.3.4",
                                           "1,2,3,4", "1.2.3.-4"));

TEST(Ipv4, Ordering) {
  EXPECT_LT(Ipv4(1, 0, 0, 0), Ipv4(2, 0, 0, 0));
  EXPECT_EQ(Ipv4(9, 9, 9, 9), Ipv4(9, 9, 9, 9));
}

TEST(Cidr, ContainsAndSize) {
  const Cidr net(Ipv4(192, 168, 0, 0), 16);
  EXPECT_EQ(net.size(), 65536u);
  EXPECT_TRUE(net.contains(Ipv4(192, 168, 255, 255)));
  EXPECT_FALSE(net.contains(Ipv4(192, 169, 0, 0)));
  EXPECT_EQ(net.at(5), Ipv4(192, 168, 0, 5));
}

TEST(Cidr, HostBitsMaskedOff) {
  const Cidr net(Ipv4(10, 1, 2, 3), 8);
  EXPECT_EQ(net.base(), Ipv4(10, 0, 0, 0));
}

TEST(Cidr, ZeroPrefixCoversEverything) {
  const Cidr all(Ipv4(0u), 0);
  EXPECT_TRUE(all.contains(Ipv4(0xffffffffu)));
  EXPECT_EQ(all.size(), 1ULL << 32);
}

TEST(Cidr, SlashThirtyTwo) {
  const Cidr host(Ipv4(1, 2, 3, 4), 32);
  EXPECT_EQ(host.size(), 1u);
  EXPECT_TRUE(host.contains(Ipv4(1, 2, 3, 4)));
  EXPECT_FALSE(host.contains(Ipv4(1, 2, 3, 5)));
}

TEST(Cidr, ParseAndPrint) {
  const auto net = Cidr::parse("198.18.0.0/15");
  ASSERT_TRUE(net.has_value());
  EXPECT_EQ(net->to_string(), "198.18.0.0/15");
  EXPECT_EQ(net->size(), 1u << 17);
}

class CidrParseInvalid : public ::testing::TestWithParam<const char*> {};

TEST_P(CidrParseInvalid, Rejected) {
  EXPECT_FALSE(Cidr::parse(GetParam()).has_value());
}

INSTANTIATE_TEST_SUITE_P(Invalid, CidrParseInvalid,
                         ::testing::Values("", "1.2.3.4", "1.2.3.4/",
                                           "1.2.3.4/33", "1.2.3.4/-1",
                                           "bad/8", "1.2.3.4/8x"));

struct RangeCase {
  const char* ip;
  bool reserved;
  bool lan;
};

class SpecialRangeTest : public ::testing::TestWithParam<RangeCase> {};

TEST_P(SpecialRangeTest, Classification) {
  const auto ip = Ipv4::parse(GetParam().ip);
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(is_reserved(*ip), GetParam().reserved) << GetParam().ip;
  EXPECT_EQ(is_lan(*ip), GetParam().lan) << GetParam().ip;
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, SpecialRangeTest,
    ::testing::Values(RangeCase{"10.1.2.3", true, true},
                      RangeCase{"192.168.1.1", true, true},
                      RangeCase{"172.16.0.1", true, true},
                      RangeCase{"172.32.0.1", false, false},
                      RangeCase{"127.0.0.1", true, true},
                      RangeCase{"169.254.10.10", true, true},
                      RangeCase{"100.64.0.1", true, false},
                      RangeCase{"100.128.0.1", false, false},
                      RangeCase{"0.1.2.3", true, false},
                      RangeCase{"224.0.0.1", true, false},
                      RangeCase{"240.0.0.1", true, false},
                      RangeCase{"255.255.255.255", true, false},
                      RangeCase{"198.18.5.5", true, false},
                      RangeCase{"198.51.100.7", true, false},
                      RangeCase{"203.0.113.1", true, false},
                      RangeCase{"192.0.2.77", true, false},
                      RangeCase{"8.8.8.8", false, false},
                      RangeCase{"1.0.0.1", false, false},
                      RangeCase{"223.255.255.255", false, false}));

TEST(Ipv4Hash, SpreadsConsecutiveAddresses) {
  const std::hash<Ipv4> hasher;
  EXPECT_NE(hasher(Ipv4(1, 2, 3, 4)), hasher(Ipv4(1, 2, 3, 5)));
}

}  // namespace
}  // namespace dnswild::net
