// EpochStore robustness: deterministic serialization, atomic publish, and
// checksum-backed detection of truncation and bit flips (DESIGN.md §14).
//
// The store's contract is that load_all() never returns a lie: any file
// that is not byte-for-byte what save() wrote — chopped tail, flipped
// bit, wrong campaign configuration — is quarantined with a cause, and
// only the contiguous good prefix of epochs survives. The campaign layer
// then falls back one epoch instead of aborting.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/store.h"

namespace dnswild {
namespace {

namespace fs = std::filesystem;

campaign::EpochRecord sample_record(std::uint32_t index) {
  campaign::EpochRecord record;
  record.index = index;
  record.start_minute = 10080ull * index;
  record.kind = index % 2 == 0 ? campaign::EpochKind::kFull
                               : campaign::EpochKind::kDelta;
  record.probed = 14784 + index;
  record.skipped_reserved = 96;
  record.skipped_blacklist = 32;
  record.responses = 425;
  record.noerror = 381;
  record.refused = 34;
  record.servfail = 10;
  record.nxdomain = 3;
  record.other_rcode = 1;
  record.retry_retransmissions = 7;
  record.retry_exhausted = 2;
  record.virtual_scan_seconds = 123.456;
  record.flagged_prefixes = 5 + index;
  record.carried_forward = 17;
  record.population = {0x0a000001u + index, 0x0a000002u, 0xc0a80101u};
  obs::PrefixRow row;
  row.key = 0x0a000001u >> 12;
  row.stats.probes = 4096;
  row.stats.responses = 120;
  row.stats.timeouts = 8;
  row.stats.noerror = 100;
  row.stats.rebinds = 3;
  record.prefixes.rows.push_back(row);
  row.key += 1;
  row.stats.fault_hits = 2;
  record.prefixes.rows.push_back(row);
  record.degradations.push_back(
      core::StageDegradation{"scan", "probe budget", 12});
  return record;
}

// Fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path(fs::current_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  fs::path path;
};

void expect_equal(const campaign::EpochRecord& a,
                  const campaign::EpochRecord& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.start_minute, b.start_minute);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.probed, b.probed);
  EXPECT_EQ(a.skipped_reserved, b.skipped_reserved);
  EXPECT_EQ(a.skipped_blacklist, b.skipped_blacklist);
  EXPECT_EQ(a.responses, b.responses);
  EXPECT_EQ(a.noerror, b.noerror);
  EXPECT_EQ(a.refused, b.refused);
  EXPECT_EQ(a.servfail, b.servfail);
  EXPECT_EQ(a.nxdomain, b.nxdomain);
  EXPECT_EQ(a.other_rcode, b.other_rcode);
  EXPECT_EQ(a.retry_retransmissions, b.retry_retransmissions);
  EXPECT_EQ(a.retry_exhausted, b.retry_exhausted);
  EXPECT_DOUBLE_EQ(a.virtual_scan_seconds, b.virtual_scan_seconds);
  EXPECT_EQ(a.flagged_prefixes, b.flagged_prefixes);
  EXPECT_EQ(a.carried_forward, b.carried_forward);
  EXPECT_EQ(a.population, b.population);
  ASSERT_EQ(a.prefixes.rows.size(), b.prefixes.rows.size());
  for (std::size_t i = 0; i < a.prefixes.rows.size(); ++i) {
    EXPECT_EQ(a.prefixes.rows[i].key, b.prefixes.rows[i].key);
    EXPECT_EQ(a.prefixes.rows[i].stats.probes,
              b.prefixes.rows[i].stats.probes);
    EXPECT_EQ(a.prefixes.rows[i].stats.rebinds,
              b.prefixes.rows[i].stats.rebinds);
    EXPECT_EQ(a.prefixes.rows[i].stats.fault_hits,
              b.prefixes.rows[i].stats.fault_hits);
  }
  ASSERT_EQ(a.degradations.size(), b.degradations.size());
  for (std::size_t i = 0; i < a.degradations.size(); ++i) {
    EXPECT_EQ(a.degradations[i].stage, b.degradations[i].stage);
    EXPECT_EQ(a.degradations[i].cause, b.degradations[i].cause);
    EXPECT_EQ(a.degradations[i].affected, b.degradations[i].affected);
  }
}

TEST(EpochStore, RoundTripPreservesEveryField) {
  ScratchDir dir("campaign_store_roundtrip");
  campaign::EpochStore store(dir.path.string(), 0xfeedfaceull);
  const campaign::EpochRecord record = sample_record(0);
  std::string error;
  ASSERT_TRUE(store.save(record, &error)) << error;
  EXPECT_FALSE(fs::exists(store.epoch_path(0) + ".tmp"));

  campaign::EpochRecord loaded;
  std::string cause;
  ASSERT_TRUE(store.load(0, &loaded, &cause)) << cause;
  expect_equal(record, loaded);
}

TEST(EpochStore, EncodeIsDeterministic) {
  ScratchDir dir("campaign_store_encode");
  campaign::EpochStore store(dir.path.string(), 1);
  const campaign::EpochRecord record = sample_record(3);
  EXPECT_EQ(store.encode(record), store.encode(record));
  EXPECT_NE(store.encode(record), store.encode(sample_record(4)));
}

TEST(EpochStore, DetectsTruncation) {
  ScratchDir dir("campaign_store_truncate");
  campaign::EpochStore store(dir.path.string(), 2);
  ASSERT_TRUE(store.save(sample_record(0)));

  const fs::path path = store.epoch_path(0);
  fs::resize_file(path, fs::file_size(path) - 5);

  campaign::EpochRecord loaded;
  std::string cause;
  EXPECT_FALSE(store.load(0, &loaded, &cause));
  EXPECT_EQ(cause, "truncated");
}

TEST(EpochStore, DetectsBitFlip) {
  ScratchDir dir("campaign_store_bitflip");
  campaign::EpochStore store(dir.path.string(), 3);
  const campaign::EpochRecord record = sample_record(0);
  ASSERT_TRUE(store.save(record));

  // Flip one bit in every byte position in turn: no single-bit error
  // anywhere in the file may slip through. (The file is a few hundred
  // bytes, so the exhaustive sweep is cheap.)
  const fs::path path = store.epoch_path(0);
  std::vector<char> bytes(fs::file_size(path));
  std::ifstream(path, std::ios::binary).read(bytes.data(), bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<char> mutated = bytes;
    mutated[i] ^= 0x10;
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        .write(mutated.data(), mutated.size());
    campaign::EpochRecord loaded;
    std::string cause;
    EXPECT_FALSE(store.load(0, &loaded, &cause))
        << "bit flip at byte " << i << " went undetected";
  }
}

TEST(EpochStore, RejectsForeignConfigHash) {
  ScratchDir dir("campaign_store_confhash");
  campaign::EpochStore writer(dir.path.string(), 10);
  ASSERT_TRUE(writer.save(sample_record(0)));

  campaign::EpochStore reader(dir.path.string(), 11);
  campaign::EpochRecord loaded;
  std::string cause;
  EXPECT_FALSE(reader.load(0, &loaded, &cause));
  EXPECT_EQ(cause, "campaign config mismatch");
}

TEST(EpochStore, LoadAllQuarantinesCorruptTailAndKeepsGoodPrefix) {
  ScratchDir dir("campaign_store_loadall");
  campaign::EpochStore store(dir.path.string(), 7);
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.save(sample_record(i)));
  }

  // Corrupt the middle epoch: epochs 0 stays usable, epoch 1 is
  // quarantined, and epoch 2 — though intact — is dropped because it
  // depends on epoch 1's population.
  const fs::path path = store.epoch_path(1);
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(60);
  file.put(static_cast<char>(0x5a));
  file.close();

  const campaign::EpochStore::ScanResult result = store.load_all();
  ASSERT_EQ(result.epochs.size(), 1u);
  EXPECT_EQ(result.epochs[0].index, 0u);
  ASSERT_EQ(result.issues.size(), 1u);
  EXPECT_EQ(result.issues[0].file, campaign::EpochStore::epoch_filename(1));
  EXPECT_FALSE(result.issues[0].cause.empty());

  // The bad file moved out of the way of the re-run; the stale epoch 2
  // file is left in place (the re-run rewrites it byte-identically).
  EXPECT_FALSE(fs::exists(store.epoch_path(1)));
  EXPECT_TRUE(fs::exists(store.epoch_path(1) + ".corrupt"));
  EXPECT_TRUE(fs::exists(store.epoch_path(2)));
}

TEST(EpochStore, LoadAllOnEmptyDirIsEmpty) {
  ScratchDir dir("campaign_store_empty");
  campaign::EpochStore store(dir.path.string(), 9);
  const campaign::EpochStore::ScanResult result = store.load_all();
  EXPECT_TRUE(result.epochs.empty());
  EXPECT_TRUE(result.issues.empty());
}

}  // namespace
}  // namespace dnswild
