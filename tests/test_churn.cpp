#include "analysis/churn.h"

#include <gtest/gtest.h>

namespace dnswild::analysis {
namespace {

TEST(ChurnCurve, FractionsComputed) {
  const auto curve = churn_curve(1000, {1.0, 7.0, 385.0}, {600, 478, 40});
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].age_days, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].alive_fraction, 0.6);
  EXPECT_DOUBLE_EQ(curve[1].alive_fraction, 0.478);
  EXPECT_DOUBLE_EQ(curve[2].alive_fraction, 0.04);
}

TEST(ChurnCurve, MismatchedLengthsTruncate) {
  const auto curve = churn_curve(10, {1.0, 2.0, 3.0}, {5, 4});
  EXPECT_EQ(curve.size(), 2u);
}

TEST(ChurnCurve, ZeroInitialCount) {
  const auto curve = churn_curve(0, {1.0}, {0});
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].alive_fraction, 0.0);
}

TEST(RdnsChurn, DynamicTokenFractionOverRecordsOnly) {
  net::RdnsStore rdns;
  rdns.set(net::Ipv4(1, 0, 0, 1), "dyn-1-0-0-1.broadband.isp.example");
  rdns.set(net::Ipv4(1, 0, 0, 2), "ppp-1-0-0-2.dialup.isp.example");
  rdns.set(net::Ipv4(1, 0, 0, 3), "static-server.isp.example");
  // 1.0.0.4 has no rDNS record at all.

  const auto stats = rdns_churn_stats(
      rdns, {net::Ipv4(1, 0, 0, 1), net::Ipv4(1, 0, 0, 2),
             net::Ipv4(1, 0, 0, 3), net::Ipv4(1, 0, 0, 4)});
  EXPECT_EQ(stats.disappeared_first_day, 4u);
  EXPECT_EQ(stats.with_rdns, 3u);
  EXPECT_EQ(stats.dynamic_tokens, 2u);
  // §2.5 computes the fraction over addresses WITH rDNS records.
  EXPECT_NEAR(stats.dynamic_fraction, 2.0 / 3.0, 1e-9);
}

TEST(RdnsChurn, EmptyInput) {
  net::RdnsStore rdns;
  const auto stats = rdns_churn_stats(rdns, {});
  EXPECT_EQ(stats.with_rdns, 0u);
  EXPECT_DOUBLE_EQ(stats.dynamic_fraction, 0.0);
}

}  // namespace
}  // namespace dnswild::analysis
