#include "cluster/hac.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace dnswild::cluster {
namespace {

// Naive O(n^3) average-linkage reference implementation used as an oracle.
std::vector<int> naive_average_linkage_cut(std::vector<std::vector<double>> d,
                                           double threshold) {
  const std::size_t n = d.size();
  std::vector<std::vector<std::size_t>> clusters;
  for (std::size_t i = 0; i < n; ++i) clusters.push_back({i});

  const auto cluster_distance = [&d](const std::vector<std::size_t>& a,
                                     const std::vector<std::size_t>& b) {
    double sum = 0;
    for (const std::size_t i : a) {
      for (const std::size_t j : b) sum += d[i][j];
    }
    return sum / (static_cast<double>(a.size()) *
                  static_cast<double>(b.size()));
  };

  while (clusters.size() > 1) {
    double best = 1e18;
    std::size_t bi = 0, bj = 1;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      for (std::size_t j = i + 1; j < clusters.size(); ++j) {
        const double dist = cluster_distance(clusters[i], clusters[j]);
        if (dist < best) {
          best = dist;
          bi = i;
          bj = j;
        }
      }
    }
    if (best > threshold) break;
    clusters[bi].insert(clusters[bi].end(), clusters[bj].begin(),
                        clusters[bj].end());
    clusters.erase(clusters.begin() + static_cast<long>(bj));
  }

  std::vector<int> labels(n, -1);
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (const std::size_t i : clusters[c]) {
      labels[i] = static_cast<int>(c);
    }
  }
  return labels;
}

// Canonical form: relabel clusters by first occurrence so assignments
// compare independent of label numbering.
std::vector<int> canonical(const std::vector<int>& labels) {
  std::vector<int> map(labels.size() + 1, -1);
  std::vector<int> out(labels.size());
  int next = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (map[static_cast<std::size_t>(labels[i])] == -1) {
      map[static_cast<std::size_t>(labels[i])] = next++;
    }
    out[i] = map[static_cast<std::size_t>(labels[i])];
  }
  return out;
}

TEST(Hac, SingleItem) {
  const Dendrogram dendrogram =
      hac_average_linkage(1, [](std::size_t, std::size_t) { return 1.0; });
  EXPECT_EQ(dendrogram.leaf_count(), 1u);
  EXPECT_TRUE(dendrogram.merges().empty());
  EXPECT_EQ(dendrogram.cut(0.5), std::vector<int>{0});
}

TEST(Hac, EmptyThrows) {
  EXPECT_THROW(
      hac_average_linkage(0, [](std::size_t, std::size_t) { return 0.0; }),
      std::invalid_argument);
}

TEST(Hac, TooManyItemsThrows) {
  EXPECT_THROW(hac_average_linkage(
                   100, [](std::size_t, std::size_t) { return 0.0; }, 10),
               std::length_error);
}

TEST(Hac, TwoWellSeparatedGroups) {
  // Items 0-2 mutually close, 3-5 mutually close, groups far apart.
  const auto distance = [](std::size_t i, std::size_t j) {
    if (i == j) return 0.0;
    const bool same_group = (i < 3) == (j < 3);
    return same_group ? 0.1 : 0.9;
  };
  const Dendrogram dendrogram = hac_average_linkage(6, distance);
  const auto labels = dendrogram.cut(0.5);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_EQ(labels[4], labels[5]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(dendrogram.cluster_count(0.5), 2u);
  EXPECT_EQ(dendrogram.cluster_count(1.0), 1u);
  EXPECT_EQ(dendrogram.cluster_count(0.05), 6u);
}

TEST(Hac, MergeDistancesAreMonotone) {
  // Average linkage is reducible: sorted merges must be non-decreasing and
  // children must merge before parents.
  util::Rng rng(3);
  const std::size_t n = 40;
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      d[i][j] = d[j][i] = rng.uniform();
    }
  }
  const Dendrogram dendrogram = hac_average_linkage(
      n, [&d](std::size_t i, std::size_t j) { return d[i][j]; });
  ASSERT_EQ(dendrogram.merges().size(), n - 1);
  double prev = -1.0;
  for (const Merge& merge : dendrogram.merges()) {
    EXPECT_GE(merge.distance, prev - 1e-9);
    EXPECT_LT(merge.left, merge.parent);
    EXPECT_LT(merge.right, merge.parent);
    prev = merge.distance;
  }
}

TEST(Hac, DuplicateItemsWithTiesTerminate) {
  // All-zero distances (identical pages) are the worst case for NN-chain
  // tie handling.
  const Dendrogram dendrogram = hac_average_linkage(
      50, [](std::size_t, std::size_t) { return 0.0; });
  EXPECT_EQ(dendrogram.cluster_count(0.0), 1u);
}

TEST(Hac, TieBlocksOfEqualDistance) {
  const auto distance = [](std::size_t i, std::size_t j) {
    if (i == j) return 0.0;
    return ((i < 5) == (j < 5)) ? 0.25 : 0.75;
  };
  const Dendrogram dendrogram = hac_average_linkage(10, distance);
  EXPECT_EQ(dendrogram.cluster_count(0.5), 2u);
}

class HacOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(HacOracleTest, MatchesNaiveImplementation) {
  // Continuous distances are tie-free with probability one, so the NN-chain
  // result must match the textbook greedy implementation exactly. (Tied
  // instances admit several valid dendrograms — those are covered by the
  // dedicated tie tests above, which only assert termination/shape.)
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 4 + rng.below(16);
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      d[i][j] = d[j][i] = rng.uniform() + 0.001;
    }
  }
  const Dendrogram dendrogram = hac_average_linkage(
      n, [&d](std::size_t i, std::size_t j) { return d[i][j]; });
  for (const double threshold : {0.2, 0.4, 0.6, 0.8}) {
    const auto ours = canonical(dendrogram.cut(threshold));
    const auto oracle = canonical(naive_average_linkage_cut(d, threshold));
    EXPECT_EQ(ours, oracle) << "threshold " << threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HacOracleTest, ::testing::Range(1, 21));

TEST(Hac, ExactMatchOnTieFreeInstances) {
  util::Rng rng(99);
  const std::size_t n = 12;
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      d[i][j] = d[j][i] = rng.uniform();  // continuous: ties have measure 0
    }
  }
  const Dendrogram dendrogram = hac_average_linkage(
      n, [&d](std::size_t i, std::size_t j) { return d[i][j]; });
  for (const double threshold : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_EQ(canonical(dendrogram.cut(threshold)),
              canonical(naive_average_linkage_cut(d, threshold)))
        << "threshold " << threshold;
  }
}

TEST(Hac, DendrogramTextRendering) {
  const auto distance = [](std::size_t i, std::size_t j) {
    return i == j ? 0.0 : 0.5;
  };
  const Dendrogram dendrogram = hac_average_linkage(3, distance);
  const std::string text = dendrogram.to_text({"a", "b", "c"});
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("node:"), std::string::npos);
  EXPECT_NE(text.find("0.5"), std::string::npos);
}

}  // namespace
}  // namespace dnswild::cluster
