#include "http/page.h"

#include <gtest/gtest.h>

namespace dnswild::http {
namespace {

TEST(HttpRequest, SerializeCarriesHostAndUserAgent) {
  HttpRequest request;
  request.host = "example.com";
  request.path = "/index.html";
  const std::string text = request.serialize();
  EXPECT_NE(text.find("GET /index.html HTTP/1.1"), std::string::npos);
  EXPECT_NE(text.find("Host: example.com"), std::string::npos);
  EXPECT_NE(text.find("Firefox/28.0"), std::string::npos);  // §3.5
}

TEST(HttpRequest, ParseRoundTrip) {
  HttpRequest request;
  request.host = "WWW.Example.COM";
  request.path = "/a/b?c=d";
  const auto parsed = HttpRequest::parse(request.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->path, "/a/b?c=d");
  EXPECT_EQ(parsed->host, "WWW.Example.COM");
}

TEST(HttpRequest, ParseRejectsGarbage) {
  EXPECT_FALSE(HttpRequest::parse("").has_value());
  EXPECT_FALSE(HttpRequest::parse("nonsense\r\n").has_value());
  EXPECT_FALSE(HttpRequest::parse("GET /\r\n").has_value());
}

TEST(HttpResponse, SerializeParseRoundTrip) {
  HttpResponse response;
  response.status = 200;
  response.status_text = "OK";
  response.headers.emplace_back("X-Custom", "value");
  response.body = "<html><body>hi</body></html>";
  const auto parsed = HttpResponse::parse(response.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->body, response.body);
  ASSERT_NE(parsed->header("x-custom"), nullptr);
  EXPECT_EQ(*parsed->header("x-custom"), "value");
  ASSERT_NE(parsed->header("content-length"), nullptr);
}

TEST(HttpResponse, RedirectHelper) {
  const HttpResponse response = HttpResponse::redirect("http://x.example/");
  EXPECT_TRUE(response.is_redirect());
  EXPECT_FALSE(response.is_error());
  ASSERT_NE(response.header("Location"), nullptr);
  EXPECT_EQ(*response.header("Location"), "http://x.example/");
  const auto parsed = HttpResponse::parse(response.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_redirect());
}

TEST(HttpResponse, ErrorHelper) {
  const HttpResponse response = HttpResponse::error(404);
  EXPECT_TRUE(response.is_error());
  EXPECT_FALSE(response.is_redirect());
  EXPECT_NE(response.body.find("404"), std::string::npos);
  EXPECT_EQ(response.status_text, "Not Found");
}

class RedirectStatusTest : public ::testing::TestWithParam<int> {};

TEST_P(RedirectStatusTest, RecognizedAsRedirect) {
  HttpResponse response;
  response.status = GetParam();
  EXPECT_TRUE(response.is_redirect());
}

INSTANTIATE_TEST_SUITE_P(Statuses, RedirectStatusTest,
                         ::testing::Values(301, 302, 303, 307));

TEST(HttpResponse, ParseRejectsNonHttp) {
  EXPECT_FALSE(HttpResponse::parse("220 FTP ready\r\n").has_value());
  EXPECT_FALSE(HttpResponse::parse("").has_value());
  EXPECT_FALSE(HttpResponse::parse("HTTP/1.1").has_value());
  EXPECT_FALSE(HttpResponse::parse("HTTP/1.1 abc OK\r\n\r\n").has_value());
}

TEST(HttpResponse, EmptyBodyParses) {
  const auto parsed =
      HttpResponse::parse("HTTP/1.1 204 No Content\r\n\r\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 204);
  EXPECT_TRUE(parsed->body.empty());
}

TEST(StatusText, CommonCodes) {
  EXPECT_EQ(status_text_for(200), "OK");
  EXPECT_EQ(status_text_for(302), "Found");
  EXPECT_EQ(status_text_for(403), "Forbidden");
  EXPECT_EQ(status_text_for(503), "Service Unavailable");
  EXPECT_EQ(status_text_for(299), "Unknown");
}

}  // namespace
}  // namespace dnswild::http
