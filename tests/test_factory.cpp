#include "http/factory.h"

#include <gtest/gtest.h>

#include "http/html.h"
#include "util/strings.h"

namespace dnswild::http {
namespace {

using util::icontains;

TEST(Factory, LegitSiteDeterministicForSameInputs) {
  const auto a = legit_site("example.com", SiteCategory::kAlexa, 0, 5);
  const auto b = legit_site("example.com", SiteCategory::kAlexa, 0, 5);
  EXPECT_EQ(a, b);
}

TEST(Factory, LegitSiteDynamicNonceChangesContentNotStructure) {
  const auto a = legit_site("example.com", SiteCategory::kAlexa, 0, 1);
  const auto b = legit_site("example.com", SiteCategory::kAlexa, 0, 2);
  EXPECT_NE(a, b);
  // The tag structure must stay identical (clustering tolerance relies on
  // this, §3.6).
  EXPECT_EQ(extract_features(a).tag_sequence,
            extract_features(b).tag_sequence);
}

TEST(Factory, LegitSiteVariantsDifferStructurally) {
  const auto a = legit_site("example.com", SiteCategory::kAlexa, 0, 1);
  const auto b = legit_site("other.example", SiteCategory::kBanking, 0, 1);
  EXPECT_NE(extract_features(a).tag_sequence,
            extract_features(b).tag_sequence);
}

TEST(Factory, BankingSiteHasLoginForm) {
  const auto html = legit_site("bank.example", SiteCategory::kBanking, 0, 1);
  EXPECT_TRUE(icontains(html, "type=\"password\""));
  EXPECT_TRUE(icontains(html, "bank.example"));
}

class CategoryPageTest : public ::testing::TestWithParam<SiteCategory> {};

TEST_P(CategoryPageTest, GeneratesNonTrivialHtml) {
  const auto html = legit_site("site.example", GetParam(), 0, 1);
  EXPECT_GT(html.size(), 100u);
  const auto features = extract_features(html);
  EXPECT_GE(features.tag_sequence.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCategories, CategoryPageTest,
    ::testing::Values(SiteCategory::kAds, SiteCategory::kAdult,
                      SiteCategory::kAlexa, SiteCategory::kAntivirus,
                      SiteCategory::kBanking, SiteCategory::kDating,
                      SiteCategory::kFilesharing, SiteCategory::kGambling,
                      SiteCategory::kMalware, SiteCategory::kMail,
                      SiteCategory::kNx, SiteCategory::kTracking,
                      SiteCategory::kMisc, SiteCategory::kGroundTruth));

TEST(Factory, ErrorPageFlavorsDiffer) {
  const auto nginx = error_page(404, 0);
  const auto apache = error_page(404, 1);
  const auto iis = error_page(404, 2);
  EXPECT_TRUE(icontains(nginx, "nginx"));
  EXPECT_TRUE(icontains(apache, "apache"));
  EXPECT_TRUE(icontains(iis, "IIS"));
  EXPECT_NE(nginx, apache);
}

TEST(Factory, RouterLoginBrands) {
  const auto zyxel = router_login(0, 1);
  EXPECT_TRUE(icontains(zyxel, "zyxel"));
  EXPECT_TRUE(icontains(zyxel, "type=\"password\""));
  const auto other = router_login(1, 1);
  EXPECT_FALSE(icontains(other, "zyxel"));
  EXPECT_TRUE(icontains(other, "type=\"password\""));
}

TEST(Factory, CameraLoginMentionsCamera) {
  EXPECT_TRUE(icontains(camera_login(1), "camera"));
}

TEST(Factory, CaptivePortalKinds) {
  EXPECT_TRUE(icontains(captive_portal(0, 1), "Portal"));
  EXPECT_TRUE(icontains(captive_portal(1, 1), "Hotel"));
  EXPECT_TRUE(icontains(captive_portal(2, 1), "Campus"));
}

TEST(Factory, CensorshipPageCarriesLegalFragment) {
  // The labeler keys on this fragment (§4.2).
  for (const char* country : {"TR", "ID", "IR", "RU"}) {
    const auto html = censorship_page(country, 3);
    EXPECT_TRUE(icontains(html, "blocked by the order of")) << country;
    EXPECT_TRUE(icontains(html, country)) << country;
  }
}

TEST(Factory, CensorshipVariantsDeterministic) {
  EXPECT_EQ(censorship_page("TR", 1), censorship_page("TR", 1));
  EXPECT_NE(censorship_page("TR", 1), censorship_page("ID", 1));
}

TEST(Factory, BlockingPageNamesDomain) {
  const auto html = blocking_page(2, 1, "irc.zief.pl");
  EXPECT_TRUE(icontains(html, "irc.zief.pl"));
  EXPECT_TRUE(icontains(html, "blocked"));
  EXPECT_FALSE(icontains(html, "blocked by the order of"));  // != censorship
}

TEST(Factory, ParkingPageTokens) {
  const auto html = parking_page("expired-domain.example", 1);
  EXPECT_TRUE(icontains(html, "domain may be for sale"));
  EXPECT_TRUE(icontains(html, "expired-domain.example"));
}

TEST(Factory, SearchPageWithAndWithoutAds) {
  const auto plain = search_page(1, "amason.com", false);
  EXPECT_TRUE(icontains(plain, "results for"));
  EXPECT_FALSE(icontains(plain, "adnet-rewrite"));
  const auto with_ads = search_page(1, "amason.com", true);
  EXPECT_TRUE(icontains(with_ads, "adnet-rewrite"));
}

TEST(Factory, PaypalKitHas46ImagesAndPhpPost) {
  const auto html = phishing_paypal(1);
  const auto features = extract_features(html);
  EXPECT_EQ(features.tag_counts.at(tag_id("img")), 46);  // §4.3
  EXPECT_TRUE(icontains(html, ".php"));
  EXPECT_TRUE(icontains(html, "method=\"post\""));
  EXPECT_TRUE(icontains(html, "type=\"password\""));
}

TEST(Factory, BankPhishIsItalianAndPhpPost) {
  const auto html = phishing_bank_it(1);
  EXPECT_TRUE(icontains(html, "banca"));
  EXPECT_TRUE(icontains(html, ".php"));
  EXPECT_TRUE(icontains(html, "type=\"password\""));
}

TEST(Factory, MalwareUpdatePages) {
  const auto flash = malware_update_page(true, 1);
  EXPECT_TRUE(icontains(flash, "Flash"));
  EXPECT_TRUE(icontains(flash, ".exe"));
  EXPECT_TRUE(icontains(flash, "is out of date!"));
  const auto java = malware_update_page(false, 1);
  EXPECT_TRUE(icontains(java, "Java"));
}

TEST(Factory, AdTamperModes) {
  const auto original = legit_site("ads.example", SiteCategory::kAds, 0, 1);
  const auto injected = tamper_ads(original, AdTamper::kInjectBanner, 1);
  EXPECT_GT(injected.size(), original.size());
  EXPECT_TRUE(icontains(injected, "adnet-rewrite"));

  const auto scripted = tamper_ads(original, AdTamper::kSuspiciousJs, 1);
  EXPECT_TRUE(icontains(scripted, "document.write"));

  const auto blanked = tamper_ads(original, AdTamper::kEmptyPlaceholder, 1);
  EXPECT_TRUE(icontains(blanked, "blocked-empty"));
  EXPECT_FALSE(icontains(blanked, "/js/delivery"));
}

TEST(Factory, CategoryNamesMatchTable5Headers) {
  EXPECT_EQ(site_category_name(SiteCategory::kMail), "MX");
  EXPECT_EQ(site_category_name(SiteCategory::kGroundTruth), "GroundTr.");
  EXPECT_EQ(site_category_name(SiteCategory::kNx), "NX");
  EXPECT_EQ(site_category_name(SiteCategory::kAds), "Ads");
}

}  // namespace
}  // namespace dnswild::http
