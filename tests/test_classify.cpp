#include "core/classify.h"

#include <gtest/gtest.h>

#include "http/factory.h"
#include "util/rng.h"

namespace dnswild::core {
namespace {

struct LabelCase {
  int status;
  std::string body;
  Label expected;
};

class LabelPageTest : public ::testing::TestWithParam<LabelCase> {};

TEST_P(LabelPageTest, RuleMatches) {
  EXPECT_EQ(label_page(GetParam().status, GetParam().body),
            GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Rules, LabelPageTest,
    ::testing::Values(
        LabelCase{200, http::censorship_page("TR", 1), Label::kCensorship},
        // Censorship outranks the HTTP status.
        LabelCase{403, http::censorship_page("ID", 1), Label::kCensorship},
        LabelCase{404, http::error_page(404, 0), Label::kHttpError},
        LabelCase{503, http::error_page(503, 1), Label::kHttpError},
        LabelCase{200, http::blocking_page(0, 1, "okcupid.com"),
                  Label::kBlocking},
        LabelCase{200, http::blocking_page(2, 1, "irc.zief.pl"),
                  Label::kBlocking},
        LabelCase{200, http::parking_page("x.example", 1), Label::kParking},
        LabelCase{200, http::search_page(1, "amason.com", false),
                  Label::kSearch},
        LabelCase{200, http::router_login(0, 1), Label::kLogin},
        LabelCase{200, http::captive_portal(1, 1), Label::kLogin},
        LabelCase{200, http::webmail_login(1), Label::kLogin},
        // Phishing kits land in content categories too (Login here).
        LabelCase{200, http::phishing_paypal(1), Label::kLogin},
        LabelCase{200, http::malware_update_page(true, 1), Label::kMisc},
        LabelCase{200, "<html><body>random blog</body></html>",
                  Label::kMisc},
        LabelCase{0, "", Label::kUnclassified}));

AcquiredPage page_for(std::size_t record_index, std::string body,
                      int status = 200) {
  AcquiredPage page;
  page.record_index = record_index;
  page.status = body.empty() ? status : 200;
  page.body = std::move(body);
  page.body_hash = util::fnv1a(page.body);
  page.connected = true;
  return page;
}

TEST(ClassifyResponses, DeduplicatesAndClusters) {
  std::vector<scan::TupleRecord> records(6);
  std::vector<AcquiredPage> pages;
  // Three identical censorship pages, two similar parking pages, one error.
  const std::string censor = http::censorship_page("TR", 1);
  pages.push_back(page_for(0, censor));
  pages.push_back(page_for(1, censor));
  pages.push_back(page_for(2, censor));
  pages.push_back(page_for(3, http::parking_page("a.example", 1)));
  pages.push_back(page_for(4, http::parking_page("b.example", 1)));
  pages.push_back(page_for(5, http::error_page(404, 0), 404));
  // Error pages report their status.
  pages.back().status = 404;

  const auto result = classify_responses(records, pages);
  EXPECT_EQ(result.unique_pages, 4u);  // censor deduped to one
  EXPECT_GE(result.clusters, 2u);
  EXPECT_LE(result.clusters, 4u);
  ASSERT_EQ(result.tuples.size(), 6u);
  EXPECT_EQ(result.tuples[0].label, Label::kCensorship);
  EXPECT_EQ(result.tuples[1].label, Label::kCensorship);
  EXPECT_EQ(result.tuples[3].label, Label::kParking);
  EXPECT_EQ(result.tuples[4].label, Label::kParking);
  EXPECT_EQ(result.tuples[5].label, Label::kHttpError);
  // Identical pages share a cluster.
  EXPECT_EQ(result.tuples[0].cluster, result.tuples[1].cluster);
  EXPECT_EQ(result.tuples[3].cluster, result.tuples[4].cluster);
  EXPECT_NE(result.tuples[0].cluster, result.tuples[3].cluster);
  EXPECT_DOUBLE_EQ(result.labeled_fraction, 1.0);
}

TEST(ClassifyResponses, DualResponseWinsOverContent) {
  std::vector<scan::TupleRecord> records(1);
  records[0].dual_response = true;
  std::vector<AcquiredPage> pages;
  pages.push_back(page_for(0, http::parking_page("x.example", 1)));
  const auto result = classify_responses(records, pages);
  EXPECT_EQ(result.tuples[0].label, Label::kCensorship);
}

TEST(ClassifyResponses, OnPathFlagsForceCensorship) {
  std::vector<scan::TupleRecord> records(2);
  std::vector<AcquiredPage> pages;
  pages.push_back(page_for(0, ""));
  pages.push_back(page_for(1, ""));
  pages[0].status = 0;
  pages[1].status = 0;
  const std::vector<char> injected = {1, 0};
  const auto result =
      classify_responses(records, pages, ClassifierConfig{}, &injected);
  EXPECT_EQ(result.tuples[0].label, Label::kCensorship);
  EXPECT_EQ(result.tuples[1].label, Label::kUnclassified);
}

TEST(ClassifyResponses, DynamicVariantsOfOnePageShareACluster) {
  // Same landing page fetched many times with per-fetch noise must land in
  // a single cluster (the clustering tolerance of §3.6).
  std::vector<scan::TupleRecord> records(8);
  std::vector<AcquiredPage> pages;
  for (int i = 0; i < 8; ++i) {
    pages.push_back(page_for(
        static_cast<std::size_t>(i),
        http::legit_site("proxy-view.example", http::SiteCategory::kAlexa, 0,
                         static_cast<std::uint64_t>(i))));
  }
  const auto result = classify_responses(records, pages);
  EXPECT_EQ(result.unique_pages, 8u);  // all bodies differ
  for (const auto& tuple : result.tuples) {
    EXPECT_EQ(tuple.cluster, result.tuples[0].cluster);
  }
}

TEST(ClassifyResponses, EmptyInput) {
  const auto result = classify_responses({}, {});
  EXPECT_TRUE(result.tuples.empty());
  EXPECT_EQ(result.unique_pages, 0u);
}

TEST(LabelNames, Distinct) {
  EXPECT_EQ(label_name(Label::kBlocking), "Blocking");
  EXPECT_EQ(label_name(Label::kHttpError), "HTTP Error");
  EXPECT_EQ(label_name(Label::kMisc), "Misc.");
}

}  // namespace
}  // namespace dnswild::core
