#include "net/lfsr.h"
#include "scan/permute.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dnswild {
namespace {

TEST(Lfsr32, NeverEmitsZeroAndDoesNotRepeatEarly) {
  net::Lfsr32 lfsr(1);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 100000; ++i) {
    const auto v = lfsr.next();
    EXPECT_NE(v, 0u);
    EXPECT_TRUE(seen.insert(v).second) << "state repeated after " << i;
  }
}

TEST(Lfsr32, ZeroSeedMappedToOne) {
  net::Lfsr32 lfsr(0);
  EXPECT_EQ(lfsr.state(), 1u);
}

TEST(Lfsr32, DeterministicForSeed) {
  net::Lfsr32 a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Lfsr32, ConsecutiveOutputsSpreadAcrossNetworks) {
  // The LFSR exists to avoid hammering one /24 with consecutive probes
  // (§2.2); consecutive outputs should almost never share a /24.
  net::Lfsr32 lfsr(99);
  std::uint32_t prev = lfsr.next();
  int same_slash24 = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t next = lfsr.next();
    if ((next >> 8) == (prev >> 8)) ++same_slash24;
    prev = next;
  }
  EXPECT_LT(same_slash24, 5);
}

TEST(Ipv4Permutation, SmallSampleHasNoDuplicates) {
  net::Ipv4Permutation permutation(7);
  std::set<std::uint32_t> seen;
  net::Ipv4 ip;
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(permutation.next(ip));
    EXPECT_TRUE(seen.insert(ip.value()).second);
  }
}

class GenericLfsrPeriod : public ::testing::TestWithParam<unsigned> {};

TEST_P(GenericLfsrPeriod, FullPeriodIsMaximal) {
  const unsigned order = GetParam();
  scan::GenericLfsr lfsr(order, 1);
  const std::uint32_t start = lfsr.state();
  std::uint64_t period = 0;
  do {
    lfsr.next();
    ++period;
    ASSERT_LE(period, (1ULL << order));
  } while (lfsr.state() != start);
  EXPECT_EQ(period, (1ULL << order) - 1);
}

INSTANTIATE_TEST_SUITE_P(Orders, GenericLfsrPeriod,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u, 13u, 14u, 15u, 16u,
                                           17u, 18u, 19u, 20u));

TEST(GenericLfsr, RejectsBadOrders) {
  EXPECT_THROW(scan::GenericLfsr(1, 1), std::invalid_argument);
  EXPECT_THROW(scan::GenericLfsr(33, 1), std::invalid_argument);
}

class IndexPermutationCount : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IndexPermutationCount, EmitsEveryIndexExactlyOnce) {
  const std::uint64_t count = GetParam();
  scan::IndexPermutation permutation(count, 5);
  std::vector<bool> seen(count, false);
  std::uint64_t emitted = 0;
  std::uint64_t index = 0;
  while (permutation.next(index)) {
    ASSERT_LT(index, count);
    ASSERT_FALSE(seen[index]) << "duplicate index " << index;
    seen[index] = true;
    ++emitted;
  }
  EXPECT_EQ(emitted, count);
}

INSTANTIATE_TEST_SUITE_P(Counts, IndexPermutationCount,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 100, 255, 256,
                                           257, 1000, 4095, 4096, 10000));

TEST(IndexPermutation, ZeroCountEmitsNothing) {
  scan::IndexPermutation permutation(0, 1);
  std::uint64_t index = 0;
  EXPECT_FALSE(permutation.next(index));
}

TEST(UniversePermutation, CoversAllPrefixesExactlyOnce) {
  std::vector<net::Cidr> universe = {
      net::Cidr(net::Ipv4(1, 0, 0, 0), 24),
      net::Cidr(net::Ipv4(2, 0, 0, 0), 26),
      net::Cidr(net::Ipv4(9, 9, 9, 8), 30),
  };
  scan::UniversePermutation permutation(universe, 17);
  EXPECT_EQ(permutation.size(), 256u + 64u + 4u);
  std::set<std::uint32_t> seen;
  net::Ipv4 ip;
  while (permutation.next(ip)) {
    bool inside = false;
    for (const auto& prefix : universe) {
      if (prefix.contains(ip)) inside = true;
    }
    EXPECT_TRUE(inside) << ip.to_string();
    EXPECT_TRUE(seen.insert(ip.value()).second);
  }
  EXPECT_EQ(seen.size(), 324u);
}

TEST(UniversePermutation, OrderIsNotSequential) {
  std::vector<net::Cidr> universe = {net::Cidr(net::Ipv4(1, 0, 0, 0), 20)};
  scan::UniversePermutation permutation(universe, 3);
  net::Ipv4 prev, current;
  ASSERT_TRUE(permutation.next(prev));
  int sequential = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(permutation.next(current));
    if (current.value() == prev.value() + 1) ++sequential;
    prev = current;
  }
  EXPECT_LT(sequential, 10);
}

}  // namespace
}  // namespace dnswild
