#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "core/report.h"
#include "scan/ipv4scan.h"
#include "worldgen/worldgen.h"

namespace dnswild::core {
namespace {

struct PipelineRun {
  worldgen::GeneratedWorld generated;
  StudyReport report;
};

// One shared end-to-end run (the pipeline is the expensive part).
PipelineRun& shared_run() {
  static PipelineRun* run = [] {
    auto* out = new PipelineRun();
    worldgen::WorldGenConfig config;
    config.resolver_count = 1200;
    config.seed = 21;
    out->generated = worldgen::generate_world(config);

    scan::Ipv4ScanConfig scan_config;
    scan_config.scanner_ip = out->generated.scanner_ip;
    scan_config.zone = out->generated.scan_zone;
    scan_config.blacklist = &out->generated.blacklist;
    scan_config.seed = 3;
    scan::Ipv4Scanner scanner(*out->generated.world, scan_config);
    const auto summary = scanner.scan(out->generated.universe);

    PipelineConfig pipeline_config;
    pipeline_config.scanner_ip = out->generated.scanner_ip;
    pipeline_config.vantage_ip = out->generated.vantage_ip;
    pipeline_config.seed = 5;
    Pipeline pipeline(*out->generated.world, *out->generated.registry,
                      pipeline_config);
    out->report =
        pipeline.run(summary.noerror_targets, out->generated.domains);
    return out;
  }();
  return *run;
}

TEST(Pipeline, TupleAccountingConsistent) {
  const StudyReport& report = shared_run().report;
  // 155 domains + ground truth per resolver.
  EXPECT_EQ(report.records.size(),
            report.resolvers.size() * report.domains.size());
  EXPECT_EQ(report.verdicts.size(), report.records.size());
  const auto& stats = report.prefilter_stats;
  EXPECT_EQ(stats.tuples, report.records.size());
  EXPECT_EQ(stats.legitimate + stats.no_answer + stats.unknown +
                stats.unresponsive,
            stats.tuples);
  // Every unknown tuple got an acquisition attempt.
  EXPECT_EQ(report.pages.size(), stats.unknown);
  // Default error budgets never trip on a healthy world.
  EXPECT_TRUE(report.degradations.empty());
}

TEST(Pipeline, PrefilterYieldsInPaperBand) {
  const StudyReport& report = shared_run().report;
  for (const auto& row : report.prefilter_by_category) {
    if (row.category == SiteCategory::kNx) {
      EXPECT_GT(row.unknown_pct, 5.0);
      EXPECT_LT(row.unknown_pct, 25.0);
    } else {
      // §4.1: 85.8–93.2% legitimate; we accept a band around it.
      EXPECT_GT(row.legitimate_pct, 75.0)
          << http::site_category_name(row.category);
      EXPECT_LT(row.unknown_pct, 20.0)
          << http::site_category_name(row.category);
    }
  }
}

TEST(Pipeline, ClassificationCoversContent) {
  const StudyReport& report = shared_run().report;
  EXPECT_GT(report.classification.unique_pages, 10u);
  EXPECT_GT(report.classification.clusters, 5u);
  EXPECT_LT(report.classification.clusters,
            report.classification.unique_pages + 1);
  // §4.2: 97.6–99.9% of content-bearing responses classified.
  EXPECT_GT(report.classification.labeled_fraction, 0.95);
}

TEST(Pipeline, Table5ShapeMatchesPaperQualitatively) {
  const StudyReport& report = shared_run().report;
  const auto& categories = DomainSet::table5_categories();
  const auto cell = [&](SiteCategory category, Label label) -> Table5Cell {
    for (std::size_t c = 0; c < categories.size(); ++c) {
      if (categories[c] == category) {
        return report.table5.columns[c][static_cast<std::size_t>(label)];
      }
    }
    return {};
  };
  // Adult/Gambling dominated by censorship (Table 5: 88.6% / 75.9%).
  EXPECT_GT(cell(SiteCategory::kAdult, Label::kCensorship).avg_pct, 50.0);
  EXPECT_GT(cell(SiteCategory::kGambling, Label::kCensorship).avg_pct, 40.0);
  // Banking never censored.
  EXPECT_LT(cell(SiteCategory::kBanking, Label::kCensorship).avg_pct, 1.0);
  // NX: search redirects prominent (35.7% in the paper), absent elsewhere.
  EXPECT_GT(cell(SiteCategory::kNx, Label::kSearch).avg_pct, 15.0);
  EXPECT_LT(cell(SiteCategory::kBanking, Label::kSearch).avg_pct, 1.0);
  // Alexa max censorship >> avg (Facebook vs the other 19 domains).
  const auto alexa = cell(SiteCategory::kAlexa, Label::kCensorship);
  EXPECT_GT(alexa.max_pct, 3.0 * alexa.avg_pct);
}

TEST(Pipeline, CensorshipGeographyMatchesFigure4) {
  const StudyReport& report = shared_run().report;
  // Fig. 4-b: unexpected responses for FB/TW/YT dominated by CN, then IR.
  ASSERT_FALSE(report.social_geo.unexpected.empty());
  EXPECT_EQ(report.social_geo.unexpected[0].first, "CN");
  // CN must hold a clear majority of the unexpected responses.
  std::uint64_t total = 0;
  for (const auto& [country, count] : report.social_geo.unexpected) {
    total += count;
  }
  EXPECT_GT(report.social_geo.unexpected[0].second * 2,
            total);  // > 50%
  // The all-responses histogram is far less concentrated (Fig. 4-a).
  ASSERT_FALSE(report.social_geo.all.empty());
  std::uint64_t all_total = 0;
  for (const auto& [country, count] : report.social_geo.all) {
    all_total += count;
  }
  EXPECT_LT(report.social_geo.all[0].second * 4, all_total * 3);
}

TEST(Pipeline, CensorshipReportHasManyCountries) {
  const StudyReport& report = shared_run().report;
  // §4.2: landing pages related to 34 countries (we accept 15+ at this
  // small scale where rare censors may not be sampled).
  EXPECT_GE(report.censorship.landing_countries.size(), 15u);
  EXPECT_GT(report.censorship.landing_ips.size(), 30u);
  EXPECT_GT(report.censorship.censorship_tuples, 0u);
  EXPECT_GT(report.censorship.dual_response_tuples, 0u);
}

TEST(Pipeline, CaseStudiesAllPresent) {
  const StudyReport& report = shared_run().report;
  const CaseStudyReport& cases = report.cases;
  EXPECT_GT(cases.proxy_resolvers_http_only, 0u);
  EXPECT_GT(cases.proxy_ips_http_only, 0u);
  EXPECT_GT(cases.paypal_phish_resolvers, 0u);
  EXPECT_GT(cases.paypal_phish_ips, 0u);
  EXPECT_GT(cases.malware_resolvers, 0u);
  EXPECT_GT(cases.ad_tamper_resolvers, 0u);
  EXPECT_GT(cases.mx_suspicious_resolvers, 0u);
  EXPECT_GT(cases.mail_listening_resolvers, 0u);
  // §4.3: most MX-suspicious resolvers point at live mail hosts (64.7%).
  EXPECT_GT(static_cast<double>(cases.mail_listening_resolvers),
            0.3 * static_cast<double>(cases.mx_suspicious_resolvers));
}

TEST(Pipeline, Sec41BehaviouralOddities) {
  const StudyReport& report = shared_run().report;
  EXPECT_GT(report.sec41.suspicious_resolvers, 0u);
  EXPECT_GT(report.sec41.self_ip_any, 0u);
  EXPECT_GT(report.sec41.static_single_ip, 0u);
  EXPECT_GT(report.sec41.same_set_multi_domain, 0u);
  // Self-IP-everywhere is a subset of self-IP-any.
  EXPECT_LE(report.sec41.self_ip_everywhere, report.sec41.self_ip_any);
}

TEST(Pipeline, HttpPayloadFractionReasonable) {
  const StudyReport& report = shared_run().report;
  // §4.2: 88.9% of unknown tuples yielded HTTP data. Injected Chinese
  // answers pull ours lower; accept a broad band.
  EXPECT_GT(report.http_payload_fraction, 0.3);
  EXPECT_LT(report.http_payload_fraction, 0.99);
}

TEST(Pipeline, RendersAllReports) {
  const StudyReport& report = shared_run().report;
  EXPECT_FALSE(render_table5(report).empty());
  EXPECT_FALSE(render_prefilter(report).empty());
  EXPECT_FALSE(render_social_geo(report).empty());
  EXPECT_FALSE(render_censorship(report).empty());
  EXPECT_FALSE(render_case_studies(report).empty());
  EXPECT_FALSE(render_modifications(report).empty());
}

TEST(Pipeline, FineGrainedModificationsFindInjections) {
  const StudyReport& report = shared_run().report;
  // The ad-tamper population injects scripts/banners into GT-similar
  // pages; the §3.6 second stage must surface at least one cluster whose
  // delta adds a script or image.
  EXPECT_GT(report.modifications.compared_pages, 0u);
  bool injection_cluster = false;
  for (const auto& cluster : report.modifications.clusters) {
    for (const auto& tag : cluster.added) {
      if (tag.find("script") != std::string::npos ||
          tag.find("img") != std::string::npos) {
        injection_cluster = true;
      }
    }
  }
  EXPECT_TRUE(injection_cluster);
}

}  // namespace
}  // namespace dnswild::core
