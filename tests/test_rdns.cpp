#include "net/rdns.h"

#include <gtest/gtest.h>

namespace dnswild::net {
namespace {

TEST(RdnsStore, SetAndLookup) {
  RdnsStore store;
  store.set(Ipv4(1, 2, 3, 4), "host.example.com");
  const auto name = store.lookup(Ipv4(1, 2, 3, 4));
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(*name, "host.example.com");
  EXPECT_FALSE(store.lookup(Ipv4(1, 2, 3, 5)).has_value());
  EXPECT_EQ(store.size(), 1u);
}

TEST(RdnsStore, Overwrite) {
  RdnsStore store;
  store.set(Ipv4(1, 2, 3, 4), "a");
  store.set(Ipv4(1, 2, 3, 4), "b");
  EXPECT_EQ(*store.lookup(Ipv4(1, 2, 3, 4)), "b");
  EXPECT_EQ(store.size(), 1u);
}

class DynamicTokenTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DynamicTokenTest, Detected) {
  EXPECT_TRUE(looks_dynamic(GetParam())) << GetParam();
}

// The §2.5 token list: broadband, dialup, dynamic + provider spellings.
INSTANTIATE_TEST_SUITE_P(
    Tokens, DynamicTokenTest,
    ::testing::Values("cpe-1-2-3-4.broadband.example.net",
                      "host.DIALUP.provider.example",
                      "1-2-3-4.dynamic.isp.example",
                      "dyn-10-0-0-1.telco.example",
                      "x.dsl.carrier.example",
                      "pool-7.metro.example",
                      "dhcp-22.campus.example",
                      "node.cable.tv.example",
                      "ppp-9.access.example",
                      "line.adsl.telecom.example"));

class StaticNameTest : public ::testing::TestWithParam<const char*> {};

TEST_P(StaticNameTest, NotDynamic) {
  EXPECT_FALSE(looks_dynamic(GetParam())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Names, StaticNameTest,
                         ::testing::Values("mail.example.com",
                                           "ns1.registrar.example",
                                           "server-7.colo.example",
                                           "www.example.org"));

TEST(SynthRdns, DynamicNamesCarryTokens) {
  for (unsigned style = 0; style < 8; ++style) {
    const std::string name =
        synth_dynamic_rdns(Ipv4(203, 0, 114, 7), "tr-isp", style);
    EXPECT_TRUE(looks_dynamic(name)) << name;
    EXPECT_NE(name.find("203-0-114-7"), std::string::npos) << name;
  }
}

TEST(SynthRdns, StaticNamesDoNot) {
  const std::string name = synth_static_rdns(Ipv4(8, 8, 8, 8), "us-isp");
  EXPECT_FALSE(looks_dynamic(name)) << name;
  EXPECT_NE(name.find("us-isp"), std::string::npos);
}

TEST(SynthRdns, StylesDiffer) {
  const Ipv4 ip(1, 2, 3, 4);
  EXPECT_NE(synth_dynamic_rdns(ip, "x", 0), synth_dynamic_rdns(ip, "x", 1));
  EXPECT_EQ(synth_dynamic_rdns(ip, "x", 0), synth_dynamic_rdns(ip, "x", 4));
}

}  // namespace
}  // namespace dnswild::net
