// Thread-count invariance of the parallel clustering engine, plus the
// exactness contracts of its fast paths.
//
// Contracts under test (DESIGN.md §7):
//  * hac_average_linkage and classify_responses produce byte-identical
//    dendrograms/labels for every `threads` value — the matrix fill shards
//    deterministic contiguous blocks of the condensed cell range, and each
//    cell depends only on its (i, j) pair.
//  * edit_distance_banded is exact whenever the true distance fits the
//    band, and clamped above it otherwise; edit_distance_adaptive always
//    equals the full DP.
//  * page_distance (cheap-first evaluation, adaptive DPs) equals the
//    unoptimized page_distance_breakdown sum bit-for-bit under default
//    options.
//  * NaN distances are clamped to 1.0 and surfaced through HacStats.
//
// Build with -DDNSWILD_SANITIZE=thread to check the fan-out under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "cluster/condensed.h"
#include "cluster/distance.h"
#include "cluster/hac.h"
#include "core/classify.h"
#include "http/factory.h"
#include "http/html.h"
#include "scan/executor.h"
#include "util/rng.h"

namespace dnswild {
namespace {

// A corpus of distinct page bodies spanning the content classes the study
// clusters: legitimate sites, censorship/blocking/parking landing pages,
// logins, and error pages.
std::vector<std::string> make_corpus(std::size_t count) {
  std::vector<std::string> corpus;
  corpus.reserve(count);
  const http::SiteCategory categories[] = {
      http::SiteCategory::kAlexa,   http::SiteCategory::kBanking,
      http::SiteCategory::kAdult,   http::SiteCategory::kGambling,
      http::SiteCategory::kMail,    http::SiteCategory::kFilesharing,
  };
  std::size_t v = 0;
  while (corpus.size() < count) {
    switch (v % 7) {
      case 0:
        corpus.push_back(http::legit_site(
            "site" + std::to_string(v) + ".example",
            categories[v % (sizeof categories / sizeof categories[0])], v,
            1));
        break;
      case 1: corpus.push_back(http::censorship_page("TR", v)); break;
      case 2:
        corpus.push_back(http::blocking_page(v % 3, v, "blocked.example"));
        break;
      case 3:
        corpus.push_back(
            http::parking_page("lot" + std::to_string(v) + ".example", v));
        break;
      case 4: corpus.push_back(http::router_login(v % 4, v)); break;
      case 5:
        corpus.push_back(
            http::error_page(static_cast<int>(400 + v % 100), v));
        break;
      case 6: corpus.push_back(http::search_page(v, "q.example", false)); break;
    }
    ++v;
  }
  return corpus;
}

std::vector<http::PageFeatures> corpus_features(
    const std::vector<std::string>& corpus) {
  std::vector<http::PageFeatures> features;
  features.reserve(corpus.size());
  for (const std::string& body : corpus) {
    features.push_back(http::extract_features(body));
  }
  return features;
}

TEST(ParallelCluster, DendrogramByteIdenticalAcrossThreadCounts) {
  const auto corpus = make_corpus(48);
  const auto features = corpus_features(corpus);
  const cluster::DistanceFn distance = [&features](std::size_t a,
                                                   std::size_t b) {
    return cluster::page_distance(features[a], features[b]);
  };

  cluster::HacOptions options;
  options.threads = 1;
  cluster::HacStats base_stats;
  const cluster::Dendrogram baseline = cluster::hac_average_linkage(
      features.size(), distance, options, &base_stats);
  ASSERT_EQ(base_stats.items, features.size());
  ASSERT_EQ(base_stats.pair_distances,
            features.size() * (features.size() - 1) / 2);
  EXPECT_EQ(base_stats.nan_distances, 0u);
  EXPECT_EQ(base_stats.matrix_bytes,
            base_stats.pair_distances * sizeof(double));

  for (const unsigned threads : {2u, 8u}) {
    cluster::HacOptions parallel = options;
    parallel.threads = threads;
    cluster::HacStats stats;
    const cluster::Dendrogram dendrogram = cluster::hac_average_linkage(
        features.size(), distance, parallel, &stats);
    ASSERT_EQ(dendrogram.merges().size(), baseline.merges().size());
    for (std::size_t k = 0; k < baseline.merges().size(); ++k) {
      EXPECT_EQ(dendrogram.merges()[k].left, baseline.merges()[k].left);
      EXPECT_EQ(dendrogram.merges()[k].right, baseline.merges()[k].right);
      EXPECT_EQ(dendrogram.merges()[k].parent, baseline.merges()[k].parent);
      // Byte identity, not tolerance: the cells are the same doubles.
      EXPECT_EQ(dendrogram.merges()[k].distance,
                baseline.merges()[k].distance);
    }
    EXPECT_EQ(dendrogram.to_text(), baseline.to_text());
    EXPECT_EQ(stats.nan_distances, 0u);
  }
}

TEST(ParallelCluster, SharedExecutorMatchesOwnedPool) {
  const auto corpus = make_corpus(24);
  const auto features = corpus_features(corpus);
  const cluster::DistanceFn distance = [&features](std::size_t a,
                                                   std::size_t b) {
    return cluster::page_distance(features[a], features[b]);
  };
  cluster::HacOptions serial;
  const auto baseline =
      cluster::hac_average_linkage(features.size(), distance, serial);

  scan::ParallelExecutor executor(4);
  cluster::HacOptions shared;
  shared.executor = &executor;
  const auto pooled =
      cluster::hac_average_linkage(features.size(), distance, shared);
  EXPECT_EQ(pooled.to_text(), baseline.to_text());
}

core::AcquiredPage make_page(std::size_t record_index, std::string body,
                             int status = 200) {
  core::AcquiredPage page;
  page.record_index = record_index;
  page.status = status;
  page.body = std::move(body);
  page.body_hash = util::fnv1a(page.body);
  page.connected = true;
  return page;
}

TEST(ParallelCluster, ClassifyLabelsInvariantAcrossThreadCounts) {
  const auto corpus = make_corpus(40);
  std::vector<scan::TupleRecord> records(corpus.size());
  std::vector<core::AcquiredPage> pages;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    pages.push_back(make_page(i, corpus[i]));
  }

  core::ClassifierConfig config;
  config.threads = 1;
  const auto baseline = core::classify_responses(records, pages, config);
  ASSERT_GT(baseline.clusters, 1u);
  ASSERT_EQ(baseline.tuples.size(), corpus.size());
  EXPECT_EQ(baseline.nan_distances, 0u);

  for (const unsigned threads : {2u, 8u}) {
    config.threads = threads;
    const auto result = core::classify_responses(records, pages, config);
    EXPECT_EQ(result.unique_pages, baseline.unique_pages);
    EXPECT_EQ(result.clusters, baseline.clusters);
    EXPECT_EQ(result.labeled_fraction, baseline.labeled_fraction);
    ASSERT_EQ(result.tuples.size(), baseline.tuples.size());
    for (std::size_t i = 0; i < result.tuples.size(); ++i) {
      EXPECT_EQ(result.tuples[i].label, baseline.tuples[i].label);
      EXPECT_EQ(result.tuples[i].cluster, baseline.tuples[i].cluster);
    }
  }
}

TEST(ParallelCluster, BandedAgreesWithExactWithinBand) {
  util::Rng rng(11);
  static constexpr char kAlphabet[] = "abcd";
  for (int trial = 0; trial < 400; ++trial) {
    std::string a, b;
    const auto len_a = rng.below(60);
    const auto len_b = rng.below(60);
    for (std::uint64_t i = 0; i < len_a; ++i) a += kAlphabet[rng.below(4)];
    for (std::uint64_t i = 0; i < len_b; ++i) b += kAlphabet[rng.below(4)];
    const std::size_t band = rng.below(20);
    const std::size_t exact = cluster::edit_distance(a, b);
    const std::size_t banded = cluster::edit_distance_banded(a, b, band);
    if (exact <= band) {
      EXPECT_EQ(banded, exact) << a << " vs " << b << " band " << band;
    } else {
      EXPECT_GT(banded, band) << a << " vs " << b << " band " << band;
    }
  }
}

TEST(ParallelCluster, BandedAgreesWithExactOnTagSequences) {
  util::Rng rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint16_t> a, b;
    const auto len_a = rng.below(50);
    const auto len_b = rng.below(50);
    for (std::uint64_t i = 0; i < len_a; ++i) {
      a.push_back(static_cast<std::uint16_t>(rng.below(6)));
    }
    for (std::uint64_t i = 0; i < len_b; ++i) {
      b.push_back(static_cast<std::uint16_t>(rng.below(6)));
    }
    const std::size_t band = rng.below(16);
    const std::size_t exact = cluster::edit_distance(a, b);
    const std::size_t banded = cluster::edit_distance_banded(a, b, band);
    if (exact <= band) {
      EXPECT_EQ(banded, exact);
    } else {
      EXPECT_GT(banded, band);
    }
  }
}

TEST(ParallelCluster, AdaptiveAlwaysEqualsFullDp) {
  util::Rng rng(13);
  static constexpr char kAlphabet[] = "abc";
  for (int trial = 0; trial < 300; ++trial) {
    std::string a, b;
    const auto len_a = rng.below(80);
    for (std::uint64_t i = 0; i < len_a; ++i) a += kAlphabet[rng.below(3)];
    // Half the trials perturb a copy (small true distance, the banded fast
    // path), half draw an independent string (large distance, the full-DP
    // fallback).
    if (trial % 2 == 0) {
      b = a;
      const auto edits = rng.below(6);
      for (std::uint64_t e = 0; e < edits && !b.empty(); ++e) {
        b[rng.below(b.size())] = kAlphabet[rng.below(3)];
      }
    } else {
      const auto len_b = rng.below(80);
      for (std::uint64_t i = 0; i < len_b; ++i) b += kAlphabet[rng.below(3)];
    }
    EXPECT_EQ(cluster::edit_distance_adaptive(a, b),
              cluster::edit_distance(a, b))
        << a << " vs " << b;
  }
}

TEST(ParallelCluster, PageDistanceEqualsBreakdownSum) {
  const auto corpus = make_corpus(26);
  const auto features = corpus_features(corpus);
  for (std::size_t i = 0; i < features.size(); ++i) {
    for (std::size_t j = i; j < features.size(); ++j) {
      // Bit-for-bit, not approximate: the optimized path must fill the
      // same breakdown and sum it with the same expression.
      EXPECT_EQ(cluster::page_distance(features[i], features[j]),
                cluster::page_distance_breakdown(features[i], features[j])
                    .combined())
          << "pair " << i << "," << j;
    }
  }
}

TEST(ParallelCluster, PageDistanceCapClampsFarPairs) {
  const auto a = http::extract_features(
      http::legit_site("a.example", http::SiteCategory::kBanking, 0, 1));
  const auto b = http::extract_features(http::censorship_page("TR", 1));
  const double exact = cluster::page_distance(a, b);

  cluster::PageDistanceOptions capped;
  capped.distance_cap = 0.05;
  const double clamped = cluster::page_distance(a, b, capped);
  // The clamp may only fire at or above the cap, and never on near pairs.
  if (clamped != exact) {
    EXPECT_GE(clamped, capped.distance_cap);
    EXPECT_LE(clamped, exact);
  }
  EXPECT_EQ(cluster::page_distance(a, a, capped), 0.0);
}

TEST(ParallelCluster, NanDistancesClampedAndCounted) {
  // Items 0..3 in two tight groups; the (0,2) and (1,3) cells return NaN,
  // which the fill must clamp to 1.0 (instead of silently corrupting the
  // NN-chain's comparisons).
  const auto nan_distance = [](std::size_t i, std::size_t j) {
    if (i > j) std::swap(i, j);
    if ((i == 0 && j == 2) || (i == 1 && j == 3)) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    const bool same_group = (i < 2) == (j < 2);
    return same_group ? 0.1 : 0.9;
  };
  const auto clamped_distance = [&](std::size_t i, std::size_t j) {
    const double d = nan_distance(i, j);
    return std::isnan(d) ? 1.0 : d;
  };

  cluster::HacOptions options;
  cluster::HacStats stats;
  const auto dendrogram =
      cluster::hac_average_linkage(4, nan_distance, options, &stats);
  EXPECT_EQ(stats.nan_distances, 2u);
  const auto reference =
      cluster::hac_average_linkage(4, clamped_distance, options);
  EXPECT_EQ(dendrogram.to_text(), reference.to_text());
  EXPECT_EQ(dendrogram.cluster_count(0.2), 2u);

  // Parallel fill accumulates the per-worker counts deterministically.
  cluster::HacOptions parallel;
  parallel.threads = 8;
  cluster::HacStats parallel_stats;
  cluster::hac_average_linkage(4, nan_distance, parallel, &parallel_stats);
  EXPECT_EQ(parallel_stats.nan_distances, 2u);
}

TEST(ParallelCluster, ClusterCountMatchesCutLabels) {
  util::Rng rng(7);
  const std::size_t n = 30;
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      d[i][j] = d[j][i] = rng.uniform();
    }
  }
  const auto dendrogram = cluster::hac_average_linkage(
      n, [&d](std::size_t i, std::size_t j) { return d[i][j]; });
  for (const double threshold :
       {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const auto labels = dendrogram.cut(threshold);
    const std::size_t from_labels = static_cast<std::size_t>(
        *std::max_element(labels.begin(), labels.end())) + 1;
    EXPECT_EQ(dendrogram.cluster_count(threshold), from_labels)
        << "threshold " << threshold;
  }
}

TEST(ParallelCluster, CondensedMatrixIndexing) {
  for (const std::size_t n : {2u, 3u, 5u, 17u}) {
    cluster::CondensedMatrix matrix(n);
    EXPECT_EQ(matrix.pair_count(), n * (n - 1) / 2);
    EXPECT_EQ(matrix.bytes(), matrix.pair_count() * sizeof(double));
    std::size_t flat = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j, ++flat) {
        EXPECT_EQ(matrix.offset(i, j), flat);
        const auto [row, col] = matrix.cell(flat);
        EXPECT_EQ(row, i);
        EXPECT_EQ(col, j);
        matrix.set(i, j, static_cast<double>(flat) + 0.5);
      }
    }
    // Symmetric reads, zero diagonal.
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(matrix.at(i, i), 0.0);
      for (std::size_t j = i + 1; j < n; ++j) {
        EXPECT_EQ(matrix.at(i, j), matrix.at(j, i));
        EXPECT_EQ(matrix.at(j, i),
                  static_cast<double>(matrix.offset(i, j)) + 0.5);
      }
    }
  }
}

}  // namespace
}  // namespace dnswild
