#include "http/fetch.h"

#include <gtest/gtest.h>

#include "http/server.h"

namespace dnswild::http {
namespace {

class UrlParseTest : public ::testing::Test {};

TEST(UrlParse, AbsoluteHttp) {
  const auto url = parse_url("http://host.example/a/b");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->scheme, "http");
  EXPECT_EQ(url->host, "host.example");
  EXPECT_EQ(url->path, "/a/b");
}

TEST(UrlParse, AbsoluteHttpsDefaults) {
  const auto url = parse_url("https://host.example");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->scheme, "https");
  EXPECT_EQ(url->path, "/");
}

TEST(UrlParse, PortStripped) {
  const auto url = parse_url("http://host.example:8080/x");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->host, "host.example");
}

TEST(UrlParse, RelativeAgainstBase) {
  const Url base{"http", "host.example", "/dir/page.html"};
  const auto absolute = parse_url("/rooted", &base);
  ASSERT_TRUE(absolute.has_value());
  EXPECT_EQ(absolute->host, "host.example");
  EXPECT_EQ(absolute->path, "/rooted");
  const auto relative = parse_url("sibling.html", &base);
  ASSERT_TRUE(relative.has_value());
  EXPECT_EQ(relative->path, "/dir/sibling.html");
}

TEST(UrlParse, RelativeWithoutBaseFails) {
  EXPECT_FALSE(parse_url("/nope").has_value());
  EXPECT_FALSE(parse_url("").has_value());
  EXPECT_FALSE(parse_url("http:///pathonly").has_value());
}

class FetchFixture : public ::testing::Test {
 protected:
  FetchFixture() : world_(1) {
    const auto add_server = [this](net::Ipv4 ip) {
      net::HostConfig config;
      config.attachment.ip = ip;
      const net::HostId id = world_.add_host(config);
      auto server = std::make_unique<WebServer>();
      WebServer* raw = server.get();
      world_.set_tcp_service(id, 80, std::move(server));
      return raw;
    };
    server_a_ = add_server(net::Ipv4(1, 0, 0, 1));
    server_b_ = add_server(net::Ipv4(1, 0, 0, 2));
  }

  net::World world_;
  WebServer* server_a_;
  WebServer* server_b_;
};

TEST_F(FetchFixture, SimpleGet) {
  server_a_->add_vhost("site.example", serve_body("<html>hello</html>"));
  Fetcher fetcher(world_, net::Ipv4(9, 0, 0, 1));
  const auto response = fetcher.get(net::Ipv4(1, 0, 0, 1), "site.example");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->body, "<html>hello</html>");
  EXPECT_FALSE(fetcher.get(net::Ipv4(1, 0, 0, 9), "site.example")
                   .has_value());
}

TEST_F(FetchFixture, RedirectFollowedToNewHostViaResolver) {
  server_a_->add_vhost("first.example", serve_response(HttpResponse::redirect(
                                            "http://second.example/land")));
  server_b_->add_vhost("second.example", serve_body("<html>landed</html>"));

  Fetcher fetcher(world_, net::Ipv4(9, 0, 0, 1));
  int resolutions = 0;
  const auto result = fetcher.fetch_page(
      net::Ipv4(1, 0, 0, 1), "first.example",
      [&](const std::string& host) -> std::optional<net::Ipv4> {
        ++resolutions;
        EXPECT_EQ(host, "second.example");
        return net::Ipv4(1, 0, 0, 2);
      });
  EXPECT_TRUE(result.connected);
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "<html>landed</html>");
  EXPECT_EQ(result.final_host, "second.example");
  EXPECT_EQ(resolutions, 1);
}

TEST_F(FetchFixture, RedirectChainCappedAtTwoHops) {
  // a -> b -> c -> d; §3.5 follows two redirects at most, so we must end on
  // the response of hop 2 (c's redirect response), never fetching d.
  server_a_->add_vhost("a.example", serve_response(HttpResponse::redirect(
                                        "http://b.example/")));
  server_a_->add_vhost("b.example", serve_response(HttpResponse::redirect(
                                        "http://c.example/")));
  server_a_->add_vhost("c.example", serve_response(HttpResponse::redirect(
                                        "http://d.example/")));
  server_a_->add_vhost("d.example", serve_body("<html>too far</html>"));

  Fetcher fetcher(world_, net::Ipv4(9, 0, 0, 1));
  const auto result = fetcher.fetch_page(
      net::Ipv4(1, 0, 0, 1), "a.example",
      [&](const std::string&) { return net::Ipv4(1, 0, 0, 1); });
  EXPECT_TRUE(result.connected);
  EXPECT_NE(result.body.find("Redirect"), std::string::npos);
  EXPECT_EQ(result.hops, 2);
  EXPECT_EQ(result.final_host, "c.example");
}

TEST_F(FetchFixture, MetaRefreshFollowed) {
  server_a_->add_vhost(
      "meta.example",
      serve_body("<html><head><meta http-equiv=\"refresh\" "
                 "content=\"0;url=http://target.example/\"></head></html>"));
  server_b_->add_vhost("target.example", serve_body("<html>target</html>"));
  Fetcher fetcher(world_, net::Ipv4(9, 0, 0, 1));
  const auto result = fetcher.fetch_page(
      net::Ipv4(1, 0, 0, 1), "meta.example",
      [&](const std::string&) { return net::Ipv4(1, 0, 0, 2); });
  EXPECT_EQ(result.body, "<html>target</html>");
}

TEST_F(FetchFixture, IframeContentAppended) {
  server_a_->add_vhost(
      "frame.example",
      serve_body("<html><iframe src=\"http://inner.example/\"></iframe>"
                 "</html>"));
  server_b_->add_vhost("inner.example",
                       serve_body("<html>inner content</html>"));
  Fetcher fetcher(world_, net::Ipv4(9, 0, 0, 1));
  const auto result = fetcher.fetch_page(
      net::Ipv4(1, 0, 0, 1), "frame.example",
      [&](const std::string&) { return net::Ipv4(1, 0, 0, 2); });
  // Composite document: outer + frame body (§3.5).
  EXPECT_NE(result.body.find("iframe"), std::string::npos);
  EXPECT_NE(result.body.find("inner content"), std::string::npos);
}

TEST_F(FetchFixture, UnresolvableRedirectStops) {
  server_a_->add_vhost("a.example", serve_response(HttpResponse::redirect(
                                        "http://gone.example/")));
  Fetcher fetcher(world_, net::Ipv4(9, 0, 0, 1));
  const auto result = fetcher.fetch_page(
      net::Ipv4(1, 0, 0, 1), "a.example",
      [&](const std::string&) { return std::nullopt; });
  EXPECT_TRUE(result.connected);
  EXPECT_EQ(result.hops, 0);
  EXPECT_TRUE(result.response->is_redirect());
}

TEST_F(FetchFixture, TlsCertificateFetch) {
  net::HostConfig config;
  config.attachment.ip = net::Ipv4(2, 0, 0, 1);
  const net::HostId id = world_.add_host(config);
  auto server = std::make_unique<WebServer>();
  net::Certificate cert;
  cert.common_name = "secure.example";
  server->add_vhost("secure.example", serve_body("x"), cert);
  world_.set_tcp_service(id, 443, std::move(server));

  Fetcher fetcher(world_, net::Ipv4(9, 0, 0, 1));
  const auto fetched = fetcher.tls_certificate(
      net::Ipv4(2, 0, 0, 1), std::optional<std::string>("secure.example"));
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->common_name, "secure.example");
  // Port 443 closed elsewhere.
  EXPECT_FALSE(fetcher
                   .tls_certificate(net::Ipv4(1, 0, 0, 1),
                                    std::optional<std::string>("x"))
                   .has_value());
}

TEST_F(FetchFixture, BannerGrabsGreetingAndHttpFallback) {
  net::HostConfig config;
  config.attachment.ip = net::Ipv4(3, 0, 0, 1);
  const net::HostId id = world_.add_host(config);
  world_.set_tcp_service(id, 21,
                         std::make_unique<BannerService>("220 ftp\r\n"));
  server_a_->set_default_handler(serve_body("<html>device page</html>"));

  Fetcher fetcher(world_, net::Ipv4(9, 0, 0, 1));
  const auto ftp = fetcher.banner(net::Ipv4(3, 0, 0, 1), 21);
  ASSERT_TRUE(ftp.has_value());
  EXPECT_EQ(*ftp, "220 ftp\r\n");
  // HTTP speaks only after a request: banner() probes with a GET.
  const auto http = fetcher.banner(net::Ipv4(1, 0, 0, 1), 80);
  ASSERT_TRUE(http.has_value());
  EXPECT_NE(http->find("device page"), std::string::npos);
  EXPECT_FALSE(fetcher.banner(net::Ipv4(3, 0, 0, 1), 23).has_value());
}

}  // namespace
}  // namespace dnswild::http
