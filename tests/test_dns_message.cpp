#include "dns/message.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dnswild::dns {
namespace {

Message round_trip(const Message& message) {
  const auto wire = message.encode();
  const auto decoded = Message::decode(wire);
  EXPECT_TRUE(decoded.has_value());
  return decoded.value_or(Message{});
}

TEST(Message, QueryRoundTrip) {
  const Message query = Message::make_query(
      0xabcd, Name::must_parse("WwW.Example.COM"), RType::kA);
  const Message decoded = round_trip(query);
  EXPECT_EQ(decoded.header.id, 0xabcd);
  EXPECT_FALSE(decoded.header.qr);
  EXPECT_TRUE(decoded.header.rd);
  ASSERT_EQ(decoded.questions.size(), 1u);
  EXPECT_EQ(decoded.questions[0].name.to_string(), "WwW.Example.COM");
  EXPECT_EQ(decoded.questions[0].qtype, RType::kA);
  EXPECT_EQ(decoded.questions[0].qclass, RClass::kIN);
}

TEST(Message, HeaderFlagsRoundTrip) {
  Message message;
  message.header.id = 7;
  message.header.qr = true;
  message.header.aa = true;
  message.header.tc = true;
  message.header.rd = true;
  message.header.ra = true;
  message.header.opcode = Opcode::kStatus;
  message.header.rcode = RCode::kRefused;
  const Message decoded = round_trip(message);
  EXPECT_TRUE(decoded.header.qr);
  EXPECT_TRUE(decoded.header.aa);
  EXPECT_TRUE(decoded.header.tc);
  EXPECT_TRUE(decoded.header.rd);
  EXPECT_TRUE(decoded.header.ra);
  EXPECT_EQ(decoded.header.opcode, Opcode::kStatus);
  EXPECT_EQ(decoded.header.rcode, RCode::kRefused);
}

TEST(Message, ARecordRoundTrip) {
  Message message;
  message.header.qr = true;
  message.answers.push_back(ResourceRecord::a(
      Name::must_parse("a.example"), net::Ipv4(1, 2, 3, 4), 300));
  const Message decoded = round_trip(message);
  ASSERT_EQ(decoded.answers.size(), 1u);
  EXPECT_EQ(decoded.answers[0].ttl, 300u);
  EXPECT_EQ(std::get<net::Ipv4>(decoded.answers[0].rdata),
            net::Ipv4(1, 2, 3, 4));
  EXPECT_EQ(decoded.answer_ips(),
            (std::vector<net::Ipv4>{net::Ipv4(1, 2, 3, 4)}));
}

TEST(Message, NsCnamePtrRoundTrip) {
  Message message;
  message.answers.push_back(ResourceRecord::ns(
      Name::must_parse("com"), Name::must_parse("a.gtld.example"), 172800));
  message.answers.push_back(ResourceRecord::cname(
      Name::must_parse("www.x.example"), Name::must_parse("x.example"), 60));
  message.answers.push_back(ResourceRecord::ptr(
      Name::must_parse("4.3.2.1.in-addr.arpa"),
      Name::must_parse("host.example"), 3600));
  const Message decoded = round_trip(message);
  ASSERT_EQ(decoded.answers.size(), 3u);
  EXPECT_EQ(std::get<Name>(decoded.answers[0].rdata).to_string(),
            "a.gtld.example");
  EXPECT_EQ(std::get<Name>(decoded.answers[1].rdata).to_string(),
            "x.example");
  EXPECT_EQ(std::get<Name>(decoded.answers[2].rdata).to_string(),
            "host.example");
}

TEST(Message, TxtRoundTripMultiChunk) {
  Message message;
  message.answers.push_back(ResourceRecord::txt(
      Name::must_parse("version.bind"), {"BIND ", "9.8.2"}, 0, RClass::kCH));
  const Message decoded = round_trip(message);
  ASSERT_EQ(decoded.answers.size(), 1u);
  EXPECT_EQ(decoded.answers[0].rclass, RClass::kCH);
  const auto& txt = std::get<TxtData>(decoded.answers[0].rdata);
  ASSERT_EQ(txt.size(), 2u);
  EXPECT_EQ(txt[0], "BIND ");
  EXPECT_EQ(txt[1], "9.8.2");
}

TEST(Message, SoaRoundTrip) {
  Message message;
  SoaData soa;
  soa.mname = Name::must_parse("ns1.example");
  soa.rname = Name::must_parse("admin.example");
  soa.serial = 2015021301;
  soa.refresh = 7200;
  soa.retry = 900;
  soa.expire = 1209600;
  soa.minimum = 86400;
  ResourceRecord rr;
  rr.name = Name::must_parse("example");
  rr.rtype = RType::kSOA;
  rr.ttl = 3600;
  rr.rdata = soa;
  message.authorities.push_back(rr);
  const Message decoded = round_trip(message);
  ASSERT_EQ(decoded.authorities.size(), 1u);
  const auto& got = std::get<SoaData>(decoded.authorities[0].rdata);
  EXPECT_EQ(got.serial, 2015021301u);
  EXPECT_EQ(got.minimum, 86400u);
  EXPECT_EQ(got.mname.to_string(), "ns1.example");
}

TEST(Message, MxRoundTrip) {
  Message message;
  ResourceRecord rr;
  rr.name = Name::must_parse("example");
  rr.rtype = RType::kMX;
  rr.ttl = 300;
  rr.rdata = MxData{10, Name::must_parse("mx1.example")};
  message.answers.push_back(rr);
  const Message decoded = round_trip(message);
  const auto& got = std::get<MxData>(decoded.answers[0].rdata);
  EXPECT_EQ(got.preference, 10);
  EXPECT_EQ(got.exchange.to_string(), "mx1.example");
}

TEST(Message, UnknownTypePreservedAsRaw) {
  Message message;
  ResourceRecord rr;
  rr.name = Name::must_parse("x.example");
  rr.rtype = static_cast<RType>(99);
  rr.ttl = 1;
  rr.rdata = RawData{1, 2, 3, 4, 5};
  message.additionals.push_back(rr);
  const Message decoded = round_trip(message);
  ASSERT_EQ(decoded.additionals.size(), 1u);
  EXPECT_EQ(std::get<RawData>(decoded.additionals[0].rdata),
            (RawData{1, 2, 3, 4, 5}));
}

TEST(Message, CompressionShrinksRepeatedNames) {
  Message message;
  const Name name = Name::must_parse("a-rather-long-domain-name.example");
  message.questions.push_back(Question{name, RType::kA, RClass::kIN});
  for (int i = 0; i < 4; ++i) {
    message.answers.push_back(
        ResourceRecord::a(name, net::Ipv4(1, 2, 3, static_cast<uint8_t>(i)),
                          60));
  }
  const auto wire = message.encode();
  // Without compression each answer would repeat the 35-byte name.
  EXPECT_LT(wire.size(), 12 + 39 + 4 * (2 + 10 + 4) + 10u);
  const auto decoded = Message::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->answers.size(), 4u);
  EXPECT_TRUE(decoded->answers[3].name.equals(name));
}

TEST(Message, AnswerIpsIgnoresNonARecords) {
  Message message;
  message.answers.push_back(ResourceRecord::cname(
      Name::must_parse("a.example"), Name::must_parse("b.example"), 60));
  message.answers.push_back(ResourceRecord::a(
      Name::must_parse("b.example"), net::Ipv4(9, 9, 9, 9), 60));
  EXPECT_EQ(message.answer_ips(),
            (std::vector<net::Ipv4>{net::Ipv4(9, 9, 9, 9)}));
}

TEST(Message, MakeResponseEchoesQuestionAndId) {
  const Message query = Message::make_query(
      0x1234, Name::must_parse("q.example"), RType::kA);
  const Message response = Message::make_response(query, RCode::kNxDomain);
  EXPECT_TRUE(response.header.qr);
  EXPECT_TRUE(response.header.ra);
  EXPECT_EQ(response.header.id, 0x1234);
  EXPECT_EQ(response.header.rcode, RCode::kNxDomain);
  ASSERT_EQ(response.questions.size(), 1u);
  EXPECT_EQ(response.questions[0].name.to_string(), "q.example");
}

class TruncatedDecode : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TruncatedDecode, EveryPrefixFailsCleanly) {
  Message message;
  message.header.id = 42;
  message.questions.push_back(
      Question{Name::must_parse("www.example.com"), RType::kA, RClass::kIN});
  message.answers.push_back(ResourceRecord::a(
      Name::must_parse("www.example.com"), net::Ipv4(1, 1, 1, 1), 60));
  const auto wire = message.encode();
  const std::size_t cut = GetParam();
  if (cut >= wire.size()) GTEST_SKIP();
  const std::vector<std::uint8_t> truncated(wire.begin(),
                                            wire.begin() +
                                                static_cast<long>(cut));
  // Must not crash; almost every cut is invalid (counts promise content).
  const auto decoded = Message::decode(truncated);
  if (cut < 12) {
    EXPECT_FALSE(decoded.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Cuts, TruncatedDecode,
                         ::testing::Values(0, 1, 5, 11, 12, 13, 20, 28, 30,
                                           35, 40, 45, 50));

class MutationRobustness : public ::testing::TestWithParam<int> {};

TEST_P(MutationRobustness, RandomlyCorruptedWireNeverMisbehaves) {
  // Property: decode() of arbitrarily mutated valid messages either fails
  // cleanly or yields a message that re-encodes without crashing. Catches
  // over-reads, infinite pointer loops, and length-confusion bugs.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  Message message;
  message.header.id = 77;
  message.header.qr = true;
  message.questions.push_back(Question{
      Name::must_parse("WwW.Example.COM"), RType::kA, RClass::kIN});
  message.answers.push_back(ResourceRecord::a(
      Name::must_parse("www.example.com"), net::Ipv4(1, 2, 3, 4), 60));
  message.answers.push_back(ResourceRecord::txt(
      Name::must_parse("version.bind"), {"BIND 9.8.2"}, 0, RClass::kCH));
  message.authorities.push_back(ResourceRecord::ns(
      Name::must_parse("com"), Name::must_parse("a.gtld.example"), 172800));
  const auto wire = message.encode();

  for (int trial = 0; trial < 500; ++trial) {
    auto mutated = wire;
    const int flips = 1 + static_cast<int>(rng.below(6));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.below(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    }
    if (rng.chance(0.3) && mutated.size() > 4) {
      mutated.resize(rng.below(mutated.size()));  // truncate too
    }
    const auto decoded = Message::decode(mutated);
    if (decoded) {
      EXPECT_NO_THROW(decoded->encode());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationRobustness, ::testing::Range(0, 8));

TEST(Message, GarbageDecodeFails) {
  EXPECT_FALSE(Message::decode({}).has_value());
  EXPECT_FALSE(Message::decode({0xff}).has_value());
}

TEST(Types, Names) {
  EXPECT_EQ(rcode_name(RCode::kNoError), "NOERROR");
  EXPECT_EQ(rcode_name(RCode::kServFail), "SERVFAIL");
  EXPECT_EQ(rcode_name(RCode::kRefused), "REFUSED");
  EXPECT_EQ(rtype_name(RType::kA), "A");
  EXPECT_EQ(rtype_name(RType::kNS), "NS");
  EXPECT_EQ(rtype_name(RType::kTXT), "TXT");
}

}  // namespace
}  // namespace dnswild::dns
