#include "http/server.h"

#include <gtest/gtest.h>

namespace dnswild::http {
namespace {

std::string get(net::TcpService& service, std::string_view host) {
  HttpRequest request;
  request.host = std::string(host);
  return service.respond(request.serialize());
}

TEST(WebServer, VhostDispatch) {
  WebServer server;
  server.add_vhost("a.example", serve_body("<html>A</html>"));
  server.add_vhost("b.example", serve_body("<html>B</html>"));

  const auto a = HttpResponse::parse(get(server, "a.example"));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->body, "<html>A</html>");
  const auto b = HttpResponse::parse(get(server, "B.EXAMPLE"));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->body, "<html>B</html>");
}

TEST(WebServer, UnknownHostIs404ByDefault) {
  WebServer server;
  server.add_vhost("a.example", serve_body("x"));
  const auto response = HttpResponse::parse(get(server, "other.example"));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 404);
}

TEST(WebServer, DefaultHandlerCatchesAllHosts) {
  WebServer server;
  server.set_default_handler(serve_body("<html>portal</html>"));
  const auto response = HttpResponse::parse(get(server, "anything.example"));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->body, "<html>portal</html>");
}

TEST(WebServer, MalformedRequestIs400) {
  WebServer server;
  const auto response = HttpResponse::parse(server.respond("garbage"));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 400);
}

TEST(WebServer, SniSelectsVhostCertificate) {
  WebServer server;
  net::Certificate cert;
  cert.common_name = "a.example";
  server.add_vhost("a.example", serve_body("x"), cert);

  const net::Certificate* with_sni =
      server.certificate(std::optional<std::string>("a.example"));
  ASSERT_NE(with_sni, nullptr);
  EXPECT_EQ(with_sni->common_name, "a.example");
  // No SNI and no default: handshake fails.
  EXPECT_EQ(server.certificate(std::nullopt), nullptr);
  EXPECT_EQ(server.certificate(std::optional<std::string>("b.example")),
            nullptr);
}

TEST(WebServer, DefaultCertificateForNonSni) {
  WebServer server;
  net::Certificate cdn;
  cdn.common_name = "*.edge.globalcdn.example";
  server.set_default_certificate(cdn);
  const net::Certificate* cert = server.certificate(std::nullopt);
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->common_name, "*.edge.globalcdn.example");
}

TEST(Certificate, HostMatching) {
  net::Certificate cert;
  cert.common_name = "example.com";
  cert.subject_alt_names = {"www.example.com", "*.cdn.example.com"};
  EXPECT_TRUE(cert.matches_host("example.com"));
  EXPECT_TRUE(cert.matches_host("WWW.EXAMPLE.COM"));
  EXPECT_TRUE(cert.matches_host("edge7.cdn.example.com"));
  EXPECT_FALSE(cert.matches_host("a.b.cdn.example.com"));  // one label only
  EXPECT_FALSE(cert.matches_host("cdn.example.com"));
  EXPECT_FALSE(cert.matches_host("other.com"));
}

TEST(Certificate, InvalidChainsNeverMatch) {
  net::Certificate cert;
  cert.common_name = "paypal.com";
  cert.self_signed = true;
  cert.valid_chain = false;
  EXPECT_FALSE(cert.matches_host("paypal.com"));
  cert.self_signed = false;
  EXPECT_FALSE(cert.matches_host("paypal.com"));
}

TEST(CertNameMatch, WildcardRules) {
  EXPECT_TRUE(net::cert_name_matches("*.example.com", "www.example.com"));
  EXPECT_FALSE(net::cert_name_matches("*.example.com", "example.com"));
  EXPECT_FALSE(net::cert_name_matches("*.example.com", "a.b.example.com"));
  EXPECT_FALSE(net::cert_name_matches("*example.com", "www.example.com"));
  EXPECT_TRUE(net::cert_name_matches("Exact.Example", "exact.example"));
}

TEST(ProxyServer, RelaysOracleContent) {
  const ContentOracle oracle = [](const HttpRequest& request)
      -> std::optional<HttpResponse> {
    if (request.host == "known.example") {
      return HttpResponse::ok("<html>original of known.example</html>");
    }
    return std::nullopt;
  };
  ProxyServer proxy(oracle, [](const std::string&) { return std::nullopt; },
                    false);
  const auto known = HttpResponse::parse(get(proxy, "known.example"));
  ASSERT_TRUE(known.has_value());
  EXPECT_EQ(known->body, "<html>original of known.example</html>");
  const auto unknown = HttpResponse::parse(get(proxy, "other.example"));
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(unknown->status, 502);
}

TEST(ProxyServer, TlsPassthroughServesOriginalCert) {
  const CertOracle certs =
      [](const std::string& host) -> std::optional<net::Certificate> {
    net::Certificate cert;
    cert.common_name = host;
    return cert;
  };
  ProxyServer tls_proxy([](const HttpRequest&) { return std::nullopt; },
                        certs, true);
  const net::Certificate* cert =
      tls_proxy.certificate(std::optional<std::string>("bank.example"));
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->common_name, "bank.example");

  ProxyServer plain_proxy([](const HttpRequest&) { return std::nullopt; },
                          certs, false);
  EXPECT_EQ(plain_proxy.certificate(std::optional<std::string>("x")),
            nullptr);
  EXPECT_EQ(tls_proxy.certificate(std::nullopt), nullptr);
}

TEST(BannerService, GreetingOnly) {
  BannerService banner("220 ZyXEL FTP ready\r\n");
  EXPECT_EQ(banner.greeting(), "220 ZyXEL FTP ready\r\n");
  EXPECT_TRUE(banner.respond("anything").empty());
  EXPECT_EQ(banner.certificate(std::nullopt), nullptr);
}

}  // namespace
}  // namespace dnswild::http
