#include "resolver/cache.h"

#include <gtest/gtest.h>

#include "fixtures.h"

namespace dnswild::resolver {
namespace {

DnsCache::Entry entry(std::uint32_t ttl, net::Ipv4 ip = net::Ipv4(1, 1, 1, 1),
                      bool dnssec = false) {
  return DnsCache::Entry{{ip}, ttl, dnssec};
}

TEST(DnsCache, HitReturnsRemainingTtl) {
  DnsCache cache;
  cache.put("example.com", entry(300), 1000);
  const auto at_insert = cache.get("example.com", 1000);
  ASSERT_TRUE(at_insert.has_value());
  EXPECT_EQ(at_insert->remaining_ttl, 300u);
  const auto later = cache.get("example.com", 1100);
  ASSERT_TRUE(later.has_value());
  EXPECT_EQ(later->remaining_ttl, 200u);
  EXPECT_EQ(later->entry.ips[0], net::Ipv4(1, 1, 1, 1));
}

TEST(DnsCache, ExpiryIsAMiss) {
  DnsCache cache;
  cache.put("example.com", entry(300), 1000);
  EXPECT_FALSE(cache.get("example.com", 1300).has_value());
  EXPECT_FALSE(cache.get("example.com", 2000).has_value());
  EXPECT_EQ(cache.size(), 0u);  // expired entries removed on touch
}

TEST(DnsCache, MissOnUnknownKey) {
  DnsCache cache;
  EXPECT_FALSE(cache.get("nope", 0).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(DnsCache, OverwriteRefreshesTtl) {
  DnsCache cache;
  cache.put("example.com", entry(100), 1000);
  cache.put("example.com", entry(500, net::Ipv4(2, 2, 2, 2)), 1050);
  const auto hit = cache.get("example.com", 1100);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->remaining_ttl, 450u);
  EXPECT_EQ(hit->entry.ips[0], net::Ipv4(2, 2, 2, 2));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DnsCache, LruEvictionAtCapacity) {
  DnsCache cache(3);
  cache.put("a", entry(1000), 0);
  cache.put("b", entry(1000), 0);
  cache.put("c", entry(1000), 0);
  // Touch "a" so "b" becomes the LRU victim.
  EXPECT_TRUE(cache.get("a", 1).has_value());
  cache.put("d", entry(1000), 2);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.get("b", 3).has_value());
  EXPECT_TRUE(cache.get("a", 3).has_value());
  EXPECT_TRUE(cache.get("c", 3).has_value());
  EXPECT_TRUE(cache.get("d", 3).has_value());
}

TEST(DnsCache, PurgeExpired) {
  DnsCache cache;
  cache.put("short", entry(10), 0);
  cache.put("long", entry(1000), 0);
  cache.purge_expired(500);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.get("long", 500).has_value());
}

TEST(DnsCache, ZeroTtlEntryExpiresImmediately) {
  DnsCache cache;
  cache.put("x", entry(0), 100);
  EXPECT_FALSE(cache.get("x", 100).has_value());
}

TEST(DnsCache, CapacityOneChurnsSafely) {
  DnsCache cache(1);
  for (int i = 0; i < 100; ++i) {
    cache.put("k" + std::to_string(i), entry(100), i);
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 99u);
}

// End-to-end: an honest resolver answers repeated queries from cache with
// decreasing TTLs, and re-resolves after expiry.
TEST(DnsCacheIntegration, ResolverServesDecreasingTtls) {
  auto mini = test::make_mini_world();
  resolver::ResolverConfig honest;
  honest.seed = 1;
  mini.add_resolver(net::Ipv4(1, 0, 0, 10), honest);

  const auto ask = [&mini]() -> std::uint32_t {
    dns::Message query = dns::Message::make_query(
        7, dns::Name::must_parse("good.example"), dns::RType::kA);
    net::UdpPacket packet;
    packet.src = net::Ipv4(9, 0, 0, 2);
    packet.src_port = 4000;
    packet.dst = net::Ipv4(1, 0, 0, 10);
    packet.dst_port = 53;
    packet.payload = query.encode();
    const auto replies = mini.world->send_udp(packet);
    EXPECT_EQ(replies.size(), 1u);
    const auto response = dns::Message::decode(replies[0].packet.payload);
    EXPECT_TRUE(response.has_value());
    return response->answers.at(0).ttl;
  };

  // good.example has TTL 300 s = 5 minutes.
  EXPECT_EQ(ask(), 300u);
  mini.world->set_time_minutes(2);
  EXPECT_EQ(ask(), 180u);  // 2 minutes later: remaining TTL
  mini.world->set_time_minutes(4);
  EXPECT_EQ(ask(), 60u);
  mini.world->set_time_minutes(6);  // past expiry: fresh resolution
  EXPECT_EQ(ask(), 300u);
}

}  // namespace
}  // namespace dnswild::resolver
