#include "core/domains.h"

#include <gtest/gtest.h>

#include <set>

namespace dnswild::core {
namespace {

TEST(DomainSet, HasExactly155Domains) {
  const DomainSet set = DomainSet::study_set();
  EXPECT_EQ(set.size(), 155u);  // §3.2
}

struct CategoryCount {
  SiteCategory category;
  std::size_t count;
};

class CategorySizeTest : public ::testing::TestWithParam<CategoryCount> {};

TEST_P(CategorySizeTest, MatchesSection32) {
  const DomainSet set = DomainSet::study_set();
  EXPECT_EQ(set.in_category(GetParam().category).size(), GetParam().count);
}

INSTANTIATE_TEST_SUITE_P(
    Counts, CategorySizeTest,
    ::testing::Values(CategoryCount{SiteCategory::kAds, 9},
                      CategoryCount{SiteCategory::kAdult, 4},
                      CategoryCount{SiteCategory::kAlexa, 20},
                      CategoryCount{SiteCategory::kAntivirus, 15},
                      CategoryCount{SiteCategory::kBanking, 20},
                      CategoryCount{SiteCategory::kDating, 3},
                      CategoryCount{SiteCategory::kFilesharing, 5},
                      CategoryCount{SiteCategory::kGambling, 4},
                      CategoryCount{SiteCategory::kMalware, 13},
                      CategoryCount{SiteCategory::kMail, 13},
                      CategoryCount{SiteCategory::kNx, 21},
                      CategoryCount{SiteCategory::kTracking, 5},
                      CategoryCount{SiteCategory::kMisc, 23}));

TEST(DomainSet, PaperNamedDomainsPresent) {
  const DomainSet set = DomainSet::study_set();
  // Domains the paper names explicitly.
  for (const char* name :
       {"irc.zief.pl", "okcupid.com", "youporn.com", "adultfinder.com",
        "rotten.com", "blogspot.com", "torproject.org", "bet-at-home.com",
        "kickass.to", "thepiratebay.se", "match.com", "paypal.com",
        "alipay.com", "ebay.com", "facebook.com", "twitter.com",
        "youtube.com", "wikileaks.org", "amason.com", "ghoogle.com",
        "wikipeida.com", "rswkllf.twitter.com"}) {
    EXPECT_NE(set.find(name), nullptr) << name;
  }
}

TEST(DomainSet, NxDomainsMarkedNonexistent) {
  const DomainSet set = DomainSet::study_set();
  for (const StudyDomain* domain : set.in_category(SiteCategory::kNx)) {
    EXPECT_FALSE(domain->exists) << domain->name;
  }
  EXPECT_TRUE(set.find("facebook.com")->exists);
}

TEST(DomainSet, MxHostsFlagged) {
  const DomainSet set = DomainSet::study_set();
  for (const StudyDomain* domain : set.in_category(SiteCategory::kMail)) {
    EXPECT_TRUE(domain->is_mx_host) << domain->name;
  }
  // Six providers' hosts (§3.2): Aim, Gmail, me.com, Outlook, Yahoo, Yandex.
  std::set<std::string> providers;
  for (const StudyDomain* domain : set.in_category(SiteCategory::kMail)) {
    const auto dot = domain->name.find('.');
    providers.insert(domain->name.substr(dot + 1));
  }
  EXPECT_EQ(providers.size(), 6u);
}

TEST(DomainSet, NoDuplicateNames) {
  const DomainSet set = DomainSet::study_set();
  std::set<std::string> names;
  for (const auto& domain : set.all()) {
    EXPECT_TRUE(names.insert(domain.name).second) << domain.name;
  }
}

TEST(DomainSet, GroundTruthSeparateFromSet) {
  const DomainSet set = DomainSet::study_set();
  EXPECT_FALSE(set.ground_truth().empty());
  EXPECT_EQ(set.find(set.ground_truth()), nullptr);
}

TEST(DomainSet, Table5CategoriesOrderedAndComplete) {
  const auto& categories = DomainSet::table5_categories();
  EXPECT_EQ(categories.size(), 14u);  // 13 sets + ground truth
  EXPECT_EQ(categories.front(), SiteCategory::kAds);
  std::set<SiteCategory> unique(categories.begin(), categories.end());
  EXPECT_EQ(unique.size(), categories.size());
}

TEST(SnoopTlds, FifteenTldsFromSection26) {
  const auto& tlds = snoop_tlds();
  EXPECT_EQ(tlds.size(), 15u);
  EXPECT_NE(std::find(tlds.begin(), tlds.end(), "co.uk"), tlds.end());
  EXPECT_NE(std::find(tlds.begin(), tlds.end(), "com"), tlds.end());
  EXPECT_NE(std::find(tlds.begin(), tlds.end(), "ru"), tlds.end());
}

}  // namespace
}  // namespace dnswild::core
