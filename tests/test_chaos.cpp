#include "dns/chaos.h"

#include <gtest/gtest.h>

namespace dnswild::dns {
namespace {

TEST(Chaos, QueryShape) {
  const Message query = make_version_query(7, version_bind_name());
  EXPECT_EQ(query.header.id, 7);
  EXPECT_FALSE(query.header.rd);  // CHAOS queries are non-recursive
  ASSERT_EQ(query.questions.size(), 1u);
  EXPECT_EQ(query.questions[0].qtype, RType::kTXT);
  EXPECT_EQ(query.questions[0].qclass, RClass::kCH);
  EXPECT_EQ(query.questions[0].name.lower(), "version.bind");
}

TEST(Chaos, ProbeNames) {
  EXPECT_EQ(version_bind_name().lower(), "version.bind");
  EXPECT_EQ(version_server_name().lower(), "version.server");
}

TEST(Chaos, ExtractVersionSingleChunk) {
  Message response;
  response.header.qr = true;
  response.answers.push_back(ResourceRecord::txt(
      version_bind_name(), {"BIND 9.8.2"}, 0, RClass::kCH));
  EXPECT_EQ(extract_version(response), "BIND 9.8.2");
}

TEST(Chaos, ExtractVersionJoinsChunks) {
  Message response;
  response.header.qr = true;
  response.answers.push_back(ResourceRecord::txt(
      version_bind_name(), {"dnsmasq-", "2.40"}, 0, RClass::kCH));
  EXPECT_EQ(extract_version(response), "dnsmasq-2.40");
}

TEST(Chaos, ErrorRcodeYieldsNothing) {
  Message response;
  response.header.qr = true;
  response.header.rcode = RCode::kRefused;
  response.answers.push_back(ResourceRecord::txt(
      version_bind_name(), {"should-not-see"}, 0, RClass::kCH));
  EXPECT_FALSE(extract_version(response).has_value());
}

TEST(Chaos, EmptyAnswerYieldsNothing) {
  Message response;
  response.header.qr = true;
  EXPECT_FALSE(extract_version(response).has_value());
}

TEST(Chaos, EmptyTxtStringYieldsNothing) {
  Message response;
  response.header.qr = true;
  response.answers.push_back(
      ResourceRecord::txt(version_bind_name(), {""}, 0, RClass::kCH));
  EXPECT_FALSE(extract_version(response).has_value());
}

}  // namespace
}  // namespace dnswild::dns
