// Thread-count invariance of the parallel scan engine.
//
// The contract under test: every scanner produces byte-identical results
// for any `threads` value, because probe identities are pure hashes and
// shards merge in deterministic block order. Worlds mutate during a scan
// (DHCP churn at chunk barriers, resolver cache warm-up), so each thread
// count gets a freshly generated world from the same seed.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "fixtures.h"
#include "scan/banner_scan.h"
#include "scan/chaos_scan.h"
#include "scan/domain_scan.h"
#include "scan/executor.h"
#include "scan/ipv4scan.h"
#include "worldgen/worldgen.h"

namespace dnswild {
namespace {

worldgen::WorldGenConfig small_config() {
  worldgen::WorldGenConfig config;
  config.seed = 77;
  config.resolver_count = 400;
  config.loss_rate = 0.02;  // exercise the per-packet loss hashing
  return config;
}

struct ScanRun {
  scan::Ipv4ScanSummary summary;
  std::vector<scan::TupleRecord> records;
  std::vector<scan::ChaosResult> chaos;
  std::vector<scan::BannerResult> banners;
  std::uint64_t udp_sent = 0;
  std::uint64_t udp_delivered = 0;
  std::uint64_t udp_dropped_filtered = 0;
};

// Runs the full scanner battery at one thread count on a fresh world.
ScanRun run_at(unsigned threads) {
  worldgen::GeneratedWorld gen = worldgen::generate_world(small_config());
  ScanRun run;

  scan::Ipv4ScanConfig scan_config;
  scan_config.scanner_ip = gen.scanner_ip;
  scan_config.zone = gen.scan_zone;
  scan_config.blacklist = &gen.blacklist;
  scan_config.seed = 42;
  scan_config.spread_over_hours = 48.0;  // chunk barriers + DHCP churn
  scan_config.retry.attempts = 1;        // retransmission seq bumping
  scan_config.threads = threads;
  scan::Ipv4Scanner scanner(*gen.world, scan_config);
  run.summary = scanner.scan(gen.universe);

  // Domain scan over a slice of the discovered population.
  std::vector<net::Ipv4> resolvers = run.summary.noerror_targets;
  if (resolvers.size() > 120) resolvers.resize(120);
  std::vector<std::string> names;
  for (const core::StudyDomain& domain : gen.domains.all()) {
    names.push_back(domain.name);
    if (names.size() == 12) break;
  }
  scan::DomainScanConfig domain_config;
  domain_config.scanner_ip = gen.scanner_ip;
  domain_config.seed = 43;
  domain_config.spread_over_hours = 24.0;
  domain_config.threads = threads;
  scan::DomainScanner domain_scanner(*gen.world, domain_config);
  run.records = domain_scanner.scan(resolvers, names);

  scan::ChaosScanner chaos(*gen.world, gen.scanner_ip, 44, threads);
  run.chaos = chaos.scan(resolvers);
  scan::BannerScanner banner(*gen.world, gen.scanner_ip, threads);
  run.banners = banner.scan(resolvers);

  run.udp_sent = gen.world->udp_sent();
  run.udp_delivered = gen.world->udp_delivered();
  run.udp_dropped_filtered = gen.world->udp_dropped_filtered();
  return run;
}

void expect_equal(const scan::Ipv4ScanSummary& a,
                  const scan::Ipv4ScanSummary& b) {
  EXPECT_EQ(a.probed, b.probed);
  EXPECT_EQ(a.skipped_reserved, b.skipped_reserved);
  EXPECT_EQ(a.skipped_blacklist, b.skipped_blacklist);
  EXPECT_EQ(a.responses, b.responses);
  EXPECT_EQ(a.noerror, b.noerror);
  EXPECT_EQ(a.refused, b.refused);
  EXPECT_EQ(a.servfail, b.servfail);
  EXPECT_EQ(a.nxdomain, b.nxdomain);
  EXPECT_EQ(a.other_rcode, b.other_rcode);
  EXPECT_EQ(a.multihomed, b.multihomed);
  EXPECT_EQ(a.noerror_targets, b.noerror_targets);
  EXPECT_EQ(a.responders, b.responders);
}

void expect_equal(const scan::TupleRecord& a, const scan::TupleRecord& b) {
  EXPECT_EQ(a.resolver_id, b.resolver_id);
  EXPECT_EQ(a.domain_index, b.domain_index);
  EXPECT_EQ(a.responded, b.responded);
  EXPECT_EQ(a.case_fallback, b.case_fallback);
  EXPECT_EQ(a.rcode, b.rcode);
  EXPECT_EQ(a.ips, b.ips);
  EXPECT_EQ(a.ns_only, b.ns_only);
  EXPECT_EQ(a.dual_response, b.dual_response);
  EXPECT_EQ(a.second_ips, b.second_ips);
}

void expect_equal(const ScanRun& a, const ScanRun& b) {
  expect_equal(a.summary, b.summary);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    expect_equal(a.records[i], b.records[i]);
  }
  ASSERT_EQ(a.chaos.size(), b.chaos.size());
  for (std::size_t i = 0; i < a.chaos.size(); ++i) {
    EXPECT_EQ(a.chaos[i].resolver, b.chaos[i].resolver);
    EXPECT_EQ(a.chaos[i].responded, b.chaos[i].responded);
    EXPECT_EQ(a.chaos[i].version_bind, b.chaos[i].version_bind);
    EXPECT_EQ(a.chaos[i].version_server, b.chaos[i].version_server);
    EXPECT_EQ(a.chaos[i].rcode_bind, b.chaos[i].rcode_bind);
    EXPECT_EQ(a.chaos[i].rcode_server, b.chaos[i].rcode_server);
  }
  ASSERT_EQ(a.banners.size(), b.banners.size());
  for (std::size_t i = 0; i < a.banners.size(); ++i) {
    EXPECT_EQ(a.banners[i].resolver, b.banners[i].resolver);
    EXPECT_EQ(a.banners[i].any_tcp_payload, b.banners[i].any_tcp_payload);
    EXPECT_EQ(a.banners[i].combined, b.banners[i].combined);
  }
  EXPECT_EQ(a.udp_sent, b.udp_sent);
  EXPECT_EQ(a.udp_delivered, b.udp_delivered);
  EXPECT_EQ(a.udp_dropped_filtered, b.udp_dropped_filtered);
}

TEST(ParallelScan, ThreadCountInvariant) {
  const ScanRun baseline = run_at(1);
  // Scans must have found something for the comparison to mean anything.
  ASSERT_GT(baseline.summary.noerror, 0u);
  ASSERT_FALSE(baseline.records.empty());
  ASSERT_GT(baseline.udp_sent, 0u);

  const ScanRun two = run_at(2);
  expect_equal(baseline, two);
  const ScanRun eight = run_at(8);
  expect_equal(baseline, eight);
}

TEST(ParallelScan, MutatorsThrowDuringTrafficPhase) {
  test::MiniWorld mini = test::make_mini_world();
  net::World& world = *mini.world;
  EXPECT_FALSE(world.in_traffic_phase());
  {
    net::World::TrafficSection traffic(world);
    EXPECT_TRUE(world.in_traffic_phase());
    EXPECT_THROW(world.set_loss_rate(0.1), std::logic_error);
    EXPECT_THROW(world.add_host(net::HostConfig{}), std::logic_error);
    EXPECT_THROW(world.advance_days(1.0), std::logic_error);
  }
  EXPECT_FALSE(world.in_traffic_phase());
  world.set_loss_rate(0.1);  // legal again after the section closes
}

TEST(ParallelExecutor, BlocksPartitionTheRange) {
  for (std::uint64_t count : {0ull, 1ull, 7ull, 64ull, 1001ull}) {
    for (unsigned blocks : {1u, 2u, 3u, 8u, 16u}) {
      EXPECT_EQ(scan::ParallelExecutor::block_begin(count, 0, blocks), 0u);
      EXPECT_EQ(scan::ParallelExecutor::block_begin(count, blocks, blocks),
                count);
      for (unsigned b = 0; b < blocks; ++b) {
        EXPECT_LE(scan::ParallelExecutor::block_begin(count, b, blocks),
                  scan::ParallelExecutor::block_begin(count, b + 1, blocks));
      }
    }
  }
}

TEST(ParallelExecutor, RunBlocksCoversEveryIndexOnce) {
  scan::ParallelExecutor executor(4);
  EXPECT_EQ(executor.threads(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  executor.run_blocks(hits.size(),
                      [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                        for (std::uint64_t i = begin; i < end; ++i) {
                          hits[i].fetch_add(1);
                        }
                      });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelExecutor, PropagatesWorkerExceptions) {
  scan::ParallelExecutor executor(3);
  EXPECT_THROW(
      executor.run_blocks(100,
                          [&](std::uint64_t begin, std::uint64_t, unsigned) {
                            if (begin > 0) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
  // The pool must survive a throwing batch and run the next one.
  std::atomic<std::uint64_t> sum{0};
  executor.run_blocks(10,
                      [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                        for (std::uint64_t i = begin; i < end; ++i) {
                          sum.fetch_add(i);
                        }
                      });
  EXPECT_EQ(sum.load(), 45u);
}

}  // namespace
}  // namespace dnswild
