#include "core/modifications.h"

#include <gtest/gtest.h>

#include "http/factory.h"
#include "util/rng.h"

namespace dnswild::core {
namespace {

// Fixture assembling StudyData with ground truth + modified copies.
class ModificationsTest : public ::testing::Test {
 protected:
  ModificationsTest() {
    domains_.push_back(
        StudyDomain{"ads.doubleclick.com", SiteCategory::kAds, true, false});
    domains_.push_back(
        StudyDomain{"news.example", SiteCategory::kAlexa, true, false});
    for (const auto& domain : domains_) {
      GroundTruthPage gt;
      gt.domain = domain.name;
      gt.body = http::legit_site(domain.name, domain.category, 0, 47);
      gt.features = http::extract_features(gt.body);
      ground_truth_.push_back(std::move(gt));
    }
  }

  void add_page(std::uint32_t resolver_id, std::uint16_t domain_index,
                std::string body) {
    scan::TupleRecord record;
    record.resolver_id = resolver_id;
    record.domain_index = domain_index;
    record.responded = true;
    record.ips = {net::Ipv4(2, 0, 0, 1)};
    records_.push_back(std::move(record));
    verdicts_.push_back(TupleVerdict::kUnknown);
    AcquiredPage page;
    page.record_index = records_.size() - 1;
    page.body = std::move(body);
    page.body_hash = util::fnv1a(page.body);
    pages_.push_back(std::move(page));
  }

  StudyData data() {
    StudyData out;
    out.resolvers = &resolvers_;
    out.records = &records_;
    out.verdicts = &verdicts_;
    out.pages = &pages_;
    out.classification = &classification_;
    out.ground_truth = &ground_truth_;
    out.domains = &domains_;
    return out;
  }

  std::vector<net::Ipv4> resolvers_ = {net::Ipv4(1, 0, 0, 1),
                                       net::Ipv4(1, 0, 0, 2)};
  std::vector<StudyDomain> domains_;
  std::vector<scan::TupleRecord> records_;
  std::vector<TupleVerdict> verdicts_;
  std::vector<AcquiredPage> pages_;
  ClassificationResult classification_;
  std::vector<GroundTruthPage> ground_truth_;
};

TEST_F(ModificationsTest, DetectsInjectedScript) {
  const std::string original =
      http::legit_site("ads.doubleclick.com", SiteCategory::kAds, 0, 47);
  const std::string tampered =
      http::tamper_ads(original, http::AdTamper::kSuspiciousJs, 3);
  add_page(0, 0, tampered);
  add_page(1, 0, tampered);  // same modification from a second resolver

  const auto report = find_modifications(data());
  EXPECT_EQ(report.compared_pages, 1u);  // deduped
  EXPECT_EQ(report.modified_pages, 1u);
  ASSERT_EQ(report.clusters.size(), 1u);
  const auto& cluster = report.clusters[0];
  EXPECT_EQ(cluster.tuples, 2u);
  EXPECT_EQ(cluster.resolvers, 2u);
  EXPECT_EQ(cluster.example_domain, "ads.doubleclick.com");
  // The injected <script> dominates the delta.
  bool has_script = false;
  for (const auto& tag : cluster.added) {
    if (tag.find("script") != std::string::npos) has_script = true;
  }
  EXPECT_TRUE(has_script);
}

TEST_F(ModificationsTest, GroupsSameCampaignAcrossDomains) {
  // The same banner injection applied to two different sites must land in
  // one cluster (it is one campaign).
  for (std::uint16_t d = 0; d < 2; ++d) {
    const std::string original = http::legit_site(
        domains_[d].name, domains_[d].category, 0, 47);
    add_page(0, d,
             http::tamper_ads(original, http::AdTamper::kInjectBanner, 9));
  }
  const auto report = find_modifications(data());
  EXPECT_EQ(report.modified_pages, 2u);
  ASSERT_EQ(report.clusters.size(), 1u);
  EXPECT_EQ(report.clusters[0].tuples, 2u);
}

TEST_F(ModificationsTest, UnmodifiedAndUnrelatedPagesIgnored) {
  // Exact ground-truth copy: empty delta, not a modification.
  add_page(0, 0, ground_truth_[0].body);
  // A whole different page class: too far from GT to qualify.
  add_page(0, 1, http::censorship_page("TR", 1));
  const auto report = find_modifications(data());
  EXPECT_EQ(report.modified_pages, 0u);
  EXPECT_TRUE(report.clusters.empty());
}

TEST_F(ModificationsTest, DistinctModificationsSeparateClusters) {
  const std::string original =
      http::legit_site("ads.doubleclick.com", SiteCategory::kAds, 0, 47);
  add_page(0, 0,
           http::tamper_ads(original, http::AdTamper::kSuspiciousJs, 1));
  add_page(1, 0,
           http::tamper_ads(original, http::AdTamper::kInjectBanner, 1));
  const auto report = find_modifications(data());
  EXPECT_EQ(report.modified_pages, 2u);
  EXPECT_EQ(report.clusters.size(), 2u);
}

TEST_F(ModificationsTest, EmptyInput) {
  const auto report = find_modifications(data());
  EXPECT_EQ(report.compared_pages, 0u);
  EXPECT_TRUE(report.clusters.empty());
}

}  // namespace
}  // namespace dnswild::core
