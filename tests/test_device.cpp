#include "resolver/device.h"

#include <gtest/gtest.h>

#include <map>

namespace dnswild::resolver {
namespace {

TEST(DeviceCatalog, SharesSumToOne) {
  double total = 0;
  for (const auto& device : device_catalog()) total += device.share;
  EXPECT_NEAR(total, 1.0, 0.005);
}

TEST(DeviceCatalog, HardwareMarginalsMatchTable4) {
  std::map<HardwareClass, double> marginals;
  for (const auto& device : device_catalog()) {
    marginals[device.hardware] += device.share;
  }
  EXPECT_NEAR(marginals[HardwareClass::kRouter], 0.341, 0.005);
  EXPECT_NEAR(marginals[HardwareClass::kEmbedded], 0.306, 0.005);
  EXPECT_NEAR(marginals[HardwareClass::kFirewall], 0.019, 0.005);
  EXPECT_NEAR(marginals[HardwareClass::kCamera], 0.018, 0.005);
  EXPECT_NEAR(marginals[HardwareClass::kDvr], 0.012, 0.005);
  // NAS + DSLAM are the "Others" bucket (1.1%).
  EXPECT_NEAR(marginals[HardwareClass::kNas] +
                  marginals[HardwareClass::kDslam],
              0.011, 0.005);
  EXPECT_NEAR(marginals[HardwareClass::kUnknown], 0.293, 0.005);
}

TEST(DeviceCatalog, ZynosShareMatchesPaperProse) {
  // §2.4: ZyNOS runs on 16.6% of the TCP-responsive resolvers.
  double zynos = 0;
  for (const auto& device : device_catalog()) {
    if (device.os == OsClass::kZynos) zynos += device.share;
  }
  EXPECT_NEAR(zynos, 0.166, 0.005);
}

TEST(DeviceCatalog, EveryProfileHasBanners) {
  for (const auto& device : device_catalog()) {
    EXPECT_FALSE(device.banners.empty()) << device.label;
    for (const auto& [port, banner] : device.banners) {
      EXPECT_FALSE(banner.empty()) << device.label;
      EXPECT_TRUE(port == 21 || port == 22 || port == 23 || port == 80)
          << device.label << " port " << port;
    }
  }
}

TEST(DeviceCatalog, PaperExampleTokenPresent) {
  // §2.4 names "dm500plus login" as its fingerprinting example.
  bool found = false;
  for (const auto& device : device_catalog()) {
    for (const auto& [port, banner] : device.banners) {
      if (banner.find("dm500plus login") != std::string::npos) {
        found = true;
        EXPECT_EQ(device.hardware, HardwareClass::kDvr);
        EXPECT_EQ(device.os, OsClass::kLinux);
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(DeviceNames, ClassLabels) {
  EXPECT_EQ(hardware_class_name(HardwareClass::kRouter), "Router");
  EXPECT_EQ(hardware_class_name(HardwareClass::kUnknown), "Unknown");
  EXPECT_EQ(os_class_name(OsClass::kZynos), "ZyNOS");
  EXPECT_EQ(os_class_name(OsClass::kSmartWare), "SmartWare");
  EXPECT_EQ(os_class_name(OsClass::kCentOs), "CentOS");
}

TEST(DeviceCatalog, TcpShareConstant) {
  EXPECT_NEAR(kTcpResponsiveShare, 0.263, 1e-9);  // §2.4
}

}  // namespace
}  // namespace dnswild::resolver
