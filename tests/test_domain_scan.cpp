#include "scan/domain_scan.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "resolver/gfw.h"

namespace dnswild::scan {
namespace {

using test::make_mini_world;
using test::MiniWorld;

DomainScanConfig scan_config(const MiniWorld& mini) {
  DomainScanConfig config;
  config.scanner_ip = mini.scanner_ip;
  config.seed = 11;
  return config;
}

TEST(DomainScanner, HonestResolverYieldsLegitTuples) {
  MiniWorld mini = make_mini_world();
  resolver::ResolverConfig honest;
  honest.seed = 1;
  mini.add_resolver(net::Ipv4(1, 0, 0, 10), honest);

  DomainScanner scanner(*mini.world, scan_config(mini));
  const auto records =
      scanner.scan({net::Ipv4(1, 0, 0, 10)}, {"good.example"});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].responded);
  EXPECT_EQ(records[0].resolver_id, 0u);
  EXPECT_EQ(records[0].domain_index, 0);
  EXPECT_EQ(records[0].rcode, dns::RCode::kNoError);
  EXPECT_EQ(records[0].ips, (std::vector<net::Ipv4>{net::Ipv4(5, 5, 5, 5)}));
  EXPECT_FALSE(records[0].dual_response);
  EXPECT_FALSE(records[0].case_fallback);
}

TEST(DomainScanner, AttributionAcrossManyResolvers) {
  MiniWorld mini = make_mini_world();
  std::vector<net::Ipv4> resolvers;
  for (int i = 0; i < 40; ++i) {
    resolver::ResolverConfig config;
    config.seed = static_cast<std::uint64_t>(i);
    const net::Ipv4 ip(1, 0, 1, static_cast<std::uint8_t>(i + 1));
    mini.add_resolver(ip, config);
    resolvers.push_back(ip);
  }
  DomainScanner scanner(*mini.world, scan_config(mini));
  const auto records = scanner.scan(resolvers, {"good.example", "x.invalid"});
  ASSERT_EQ(records.size(), 80u);
  for (const auto& record : records) {
    EXPECT_TRUE(record.responded);
    // Attribution: each record's id matches the probe we sent it with.
    EXPECT_LT(record.resolver_id, 40u);
  }
}

TEST(DomainScanner, MangledPortRecoveredViaCaseBits) {
  MiniWorld mini = make_mini_world();
  resolver::ResolverConfig mangler;
  mangler.seed = 1;
  mangler.mangle_reply_port = true;
  mini.add_resolver(net::Ipv4(1, 0, 0, 10), mangler);

  DomainScanner scanner(*mini.world, scan_config(mini));
  const auto records =
      scanner.scan({net::Ipv4(1, 0, 0, 10)}, {"good.example"});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].responded);
  EXPECT_TRUE(records[0].case_fallback);  // §3.3 redundancy engaged
}

TEST(DomainScanner, NsOnlyRecorded) {
  MiniWorld mini = make_mini_world();
  resolver::ResolverConfig ns_only;
  ns_only.seed = 1;
  ns_only.behavior.base = resolver::BasePolicy::kNsOnlyAll;
  mini.add_resolver(net::Ipv4(1, 0, 0, 10), ns_only);
  DomainScanner scanner(*mini.world, scan_config(mini));
  const auto records =
      scanner.scan({net::Ipv4(1, 0, 0, 10)}, {"good.example"});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].ns_only);
  EXPECT_TRUE(records[0].ips.empty());
}

TEST(DomainScanner, GfwDualResponseDetected) {
  MiniWorld mini = make_mini_world();
  resolver::ResolverConfig honest;
  honest.seed = 1;
  mini.add_resolver(net::Ipv4(60, 0, 0, 10), honest);

  resolver::GfwConfig gfw_config;
  gfw_config.monitored_prefixes = {net::Cidr(net::Ipv4(60, 0, 0, 0), 8)};
  gfw_config.censored_suffixes = {"good.example"};
  gfw_config.seed = 3;
  resolver::install_gfw(*mini.world,
                        std::make_shared<resolver::GfwInjector>(gfw_config));

  DomainScanner scanner(*mini.world, scan_config(mini));
  const auto records =
      scanner.scan({net::Ipv4(60, 0, 0, 10)}, {"good.example"});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].responded);
  // First answer is the forged one; the honest answer arrives second and
  // differs -> the §4.2 signature.
  EXPECT_TRUE(records[0].dual_response);
  EXPECT_NE(records[0].ips, records[0].second_ips);
  EXPECT_EQ(records[0].second_ips,
            (std::vector<net::Ipv4>{net::Ipv4(5, 5, 5, 5)}));
}

TEST(DomainScanner, SilentResolverLeavesUnresponded) {
  MiniWorld mini = make_mini_world();
  DomainScanner scanner(*mini.world, scan_config(mini));
  const auto records =
      scanner.scan({net::Ipv4(1, 0, 0, 200)}, {"good.example"});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].responded);
}

TEST(DomainScanner, OversizedResolverListRejected) {
  MiniWorld mini = make_mini_world();
  DomainScanner scanner(*mini.world, scan_config(mini));
  std::vector<net::Ipv4> too_many(kMaxResolverId + 2, net::Ipv4(1, 1, 1, 1));
  EXPECT_THROW(scanner.scan(too_many, {"good.example"}), std::length_error);
}

}  // namespace
}  // namespace dnswild::scan
