#include "resolver/gfw.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "dns/message.h"
#include "resolver/resolver.h"

namespace dnswild::resolver {
namespace {

GfwConfig config() {
  GfwConfig out;
  out.monitored_prefixes = {net::Cidr(net::Ipv4(60, 0, 0, 0), 8)};
  out.censored_suffixes = {"facebook.com", "twitter.com"};
  out.injected_latency_ms = 3;
  out.seed = 7;
  return out;
}

net::UdpPacket query_packet(std::string_view name, net::Ipv4 dst) {
  net::UdpPacket packet;
  packet.src = net::Ipv4(9, 9, 9, 9);
  packet.src_port = 4000;
  packet.dst = dst;
  packet.dst_port = 53;
  packet.payload =
      dns::Message::make_query(11, dns::Name::must_parse(name),
                               dns::RType::kA)
          .encode();
  return packet;
}

TEST(Gfw, ScopeMatching) {
  GfwInjector injector(config());
  EXPECT_TRUE(injector.in_scope(net::Ipv4(60, 1, 2, 3), "facebook.com"));
  EXPECT_TRUE(injector.in_scope(net::Ipv4(60, 1, 2, 3), "www.facebook.com"));
  EXPECT_FALSE(injector.in_scope(net::Ipv4(60, 1, 2, 3), "example.com"));
  EXPECT_FALSE(injector.in_scope(net::Ipv4(61, 1, 2, 3), "facebook.com"));
  EXPECT_FALSE(
      injector.in_scope(net::Ipv4(60, 1, 2, 3), "notfacebook.com"));
}

TEST(Gfw, InjectsForgedAnswerWithSpoofedSource) {
  GfwInjector injector(config());
  std::vector<net::UdpReply> replies;
  injector(query_packet("Facebook.COM", net::Ipv4(60, 5, 5, 5)), replies);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].packet.src, net::Ipv4(60, 5, 5, 5));  // spoofed
  EXPECT_EQ(replies[0].latency_ms, 3);
  const auto forged = dns::Message::decode(replies[0].packet.payload);
  ASSERT_TRUE(forged.has_value());
  EXPECT_TRUE(forged->header.qr);
  EXPECT_EQ(forged->header.id, 11);  // matches the open transaction
  const auto ips = forged->answer_ips();
  ASSERT_EQ(ips.size(), 1u);
  EXPECT_FALSE(net::is_reserved(ips[0]));
  EXPECT_EQ(injector.injected_count(), 1u);
}

TEST(Gfw, IgnoresUnmonitoredAndUncensoredTraffic) {
  GfwInjector injector(config());
  std::vector<net::UdpReply> replies;
  injector(query_packet("facebook.com", net::Ipv4(99, 5, 5, 5)), replies);
  injector(query_packet("example.com", net::Ipv4(60, 5, 5, 5)), replies);
  EXPECT_TRUE(replies.empty());
  EXPECT_EQ(injector.injected_count(), 0u);
}

TEST(Gfw, IgnoresNonDnsAndNonAQueries) {
  GfwInjector injector(config());
  std::vector<net::UdpReply> replies;
  // Non-DNS payload.
  net::UdpPacket garbage = query_packet("facebook.com", net::Ipv4(60, 1, 1, 1));
  garbage.payload = {1, 2, 3};
  injector(garbage, replies);
  // Wrong port.
  net::UdpPacket http = query_packet("facebook.com", net::Ipv4(60, 1, 1, 1));
  http.dst_port = 80;
  injector(http, replies);
  // NS query.
  net::UdpPacket ns = query_packet("facebook.com", net::Ipv4(60, 1, 1, 1));
  ns.payload = dns::Message::make_query(1, dns::Name::must_parse(
                                               "facebook.com"),
                                        dns::RType::kNS)
                   .encode();
  injector(ns, replies);
  EXPECT_TRUE(replies.empty());
}

TEST(Gfw, ForgedRepliesVaryPerQuery) {
  GfwInjector injector(config());
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 20; ++i) {
    std::vector<net::UdpReply> replies;
    // Forged content is a pure function of the packet identity; distinct
    // transmissions of the same query must bump seq, as retransmitting
    // senders do.
    net::UdpPacket packet = query_packet("twitter.com", net::Ipv4(60, 1, 1, 1));
    packet.seq = static_cast<std::uint32_t>(i);
    injector(packet, replies);
    ASSERT_EQ(replies.size(), 1u);
    const auto forged = dns::Message::decode(replies[0].packet.payload);
    seen.insert(forged->answer_ips()[0].value());
  }
  EXPECT_GT(seen.size(), 15u);
}

TEST(Gfw, DualResponseRaceInWorld) {
  // End to end: an honest resolver behind the firewall produces the §4.2
  // signature — forged answer first, legitimate answer later.
  net::World world(1);
  auto registry = std::make_unique<AuthRegistry>();
  registry->add_domain("facebook.com", {net::Ipv4(31, 13, 0, 1)}, 60);

  net::HostConfig host_config;
  host_config.attachment.ip = net::Ipv4(60, 7, 7, 7);
  const net::HostId id = world.add_host(host_config);
  ResolverConfig resolver_config;
  resolver_config.registry = registry.get();
  resolver_config.clock = &world.clock();
  resolver_config.seed = 3;
  world.set_udp_service(
      id, 53, std::make_unique<OpenResolverService>(resolver_config));

  install_gfw(world, std::make_shared<GfwInjector>(config()));

  const auto replies =
      world.send_udp(query_packet("facebook.com", net::Ipv4(60, 7, 7, 7)));
  ASSERT_EQ(replies.size(), 2u);
  const auto first = dns::Message::decode(replies[0].packet.payload);
  const auto second = dns::Message::decode(replies[1].packet.payload);
  ASSERT_TRUE(first && second);
  // The forged response wins the race; the legitimate one trails.
  EXPECT_NE(first->answer_ips(), second->answer_ips());
  EXPECT_EQ(second->answer_ips(),
            (std::vector<net::Ipv4>{net::Ipv4(31, 13, 0, 1)}));
}

}  // namespace
}  // namespace dnswild::resolver
