#include "analysis/weekly.h"

#include <gtest/gtest.h>

#include "fixtures.h"

namespace dnswild::analysis {
namespace {

using test::make_mini_world;
using test::MiniWorld;

TEST(WeeklyCampaign, SeriesChurnAndDatesOnMiniWorld) {
  MiniWorld mini = make_mini_world();
  // 20 stable resolvers + 10 on fast-churning dynamic addresses.
  resolver::ResolverConfig honest;
  honest.seed = 1;
  for (int i = 0; i < 20; ++i) {
    mini.add_resolver(net::Ipv4(1, 0, 0, static_cast<std::uint8_t>(10 + i)),
                      honest);
  }
  for (int i = 0; i < 10; ++i) {
    net::HostConfig host_config;
    host_config.attachment.dynamic = true;
    host_config.attachment.pool = net::Cidr(net::Ipv4(2, 0, 0, 0), 16);
    host_config.attachment.mean_lease_days = 2.0;
    const net::HostId id = mini.world->add_host(host_config);
    resolver::ResolverConfig config;
    config.seed = static_cast<std::uint64_t>(100 + i);
    config.registry = mini.registry.get();
    config.clock = &mini.world->clock();
    mini.world->set_udp_service(
        id, 53, std::make_unique<resolver::OpenResolverService>(config));
  }

  WeeklyCampaignConfig config;
  config.weeks = 6;
  config.scan.scanner_ip = mini.scanner_ip;
  config.scan.zone = mini.scan_zone;
  config.scan.seed = 5;
  config.universe = {net::Cidr(net::Ipv4(1, 0, 0, 0), 24),
                     net::Cidr(net::Ipv4(2, 0, 0, 0), 16)};

  const auto result = run_weekly_campaign(*mini.world, config);

  ASSERT_EQ(result.series.size(), 6u);
  EXPECT_EQ(result.series[0].date, "2014/01/31");
  EXPECT_EQ(result.series[1].date, "2014/02/07");
  // All 30 resolvers answer NOERROR each week (dynamic ones from new
  // addresses).
  for (const auto& point : result.series) {
    EXPECT_EQ(point.noerror, 30u) << "week " << point.week;
    EXPECT_EQ(point.refused, 0u);
  }
  EXPECT_EQ(result.first_scan_noerror.size(), 30u);
  EXPECT_EQ(result.last_scan_noerror.size(), 30u);

  // Churn probes: daily for the first week, then weekly.
  ASSERT_GE(result.churn_age_days.size(), 6u + 5u);
  EXPECT_DOUBLE_EQ(result.churn_age_days[0], 1.0);
  // The 20 static resolvers always survive; the 10 dynamic ones decay.
  for (const auto alive : result.churn_alive) {
    EXPECT_GE(alive, 20u);
    EXPECT_LE(alive, 30u);
  }
  // By week 5 (17+ mean lifetimes) essentially all dynamics have moved.
  EXPECT_LE(result.churn_alive.back(), 22u);
  // Day-1 disappearances subset of the dynamic pool.
  for (const auto ip : result.disappeared_first_day) {
    EXPECT_TRUE(net::Cidr(net::Ipv4(2, 0, 0, 0), 16).contains(ip));
  }
}

TEST(WeeklyCampaign, DecommissionedPopulationShrinks) {
  MiniWorld mini = make_mini_world();
  resolver::ResolverConfig honest;
  honest.seed = 1;
  for (int i = 0; i < 10; ++i) {
    mini.add_resolver(net::Ipv4(1, 0, 0, static_cast<std::uint8_t>(10 + i)),
                      honest);
  }
  // 10 more that disappear mid-study.
  for (int i = 0; i < 10; ++i) {
    net::HostConfig host_config;
    host_config.attachment.ip =
        net::Ipv4(1, 0, 0, static_cast<std::uint8_t>(100 + i));
    host_config.active_until_day = 10.0 + i;
    const net::HostId id = mini.world->add_host(host_config);
    resolver::ResolverConfig config;
    config.seed = static_cast<std::uint64_t>(i);
    config.registry = mini.registry.get();
    config.clock = &mini.world->clock();
    mini.world->set_udp_service(
        id, 53, std::make_unique<resolver::OpenResolverService>(config));
  }

  WeeklyCampaignConfig config;
  config.weeks = 5;
  config.track_churn = false;
  config.scan.scanner_ip = mini.scanner_ip;
  config.scan.zone = mini.scan_zone;
  config.scan.seed = 5;
  config.universe = {net::Cidr(net::Ipv4(1, 0, 0, 0), 24)};

  const auto result = run_weekly_campaign(*mini.world, config);
  EXPECT_EQ(result.series.front().noerror, 20u);
  EXPECT_EQ(result.series.back().noerror, 10u);
  EXPECT_TRUE(result.churn_age_days.empty());
}

}  // namespace
}  // namespace dnswild::analysis
