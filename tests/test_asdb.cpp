#include "net/asdb.h"

#include <gtest/gtest.h>

namespace dnswild::net {
namespace {

AsDb make_db() {
  AsDb db;
  db.add_as({64500, "Alpha Broadband", "US", AsKind::kBroadbandIsp});
  db.add_as({64501, "Beta Hosting", "DE", AsKind::kHosting});
  db.add_as({64502, "Gamma CDN", "SG", AsKind::kCdn});
  db.add_prefix(*Cidr::parse("1.0.0.0/16"), 64500);
  db.add_prefix(*Cidr::parse("1.1.0.0/16"), 64500);
  db.add_prefix(*Cidr::parse("2.0.0.0/24"), 64501);
  db.add_prefix(*Cidr::parse("3.3.3.0/24"), 64502);
  return db;
}

TEST(AsDb, LookupInsidePrefixes) {
  const AsDb db = make_db();
  EXPECT_EQ(db.lookup_asn(Ipv4(1, 0, 5, 5)), 64500u);
  EXPECT_EQ(db.lookup_asn(Ipv4(1, 1, 255, 255)), 64500u);
  EXPECT_EQ(db.lookup_asn(Ipv4(2, 0, 0, 99)), 64501u);
  EXPECT_EQ(db.lookup_asn(Ipv4(3, 3, 3, 1)), 64502u);
}

TEST(AsDb, LookupOutsideReturnsNothing) {
  const AsDb db = make_db();
  EXPECT_FALSE(db.lookup_asn(Ipv4(9, 9, 9, 9)).has_value());
  EXPECT_FALSE(db.lookup_asn(Ipv4(1, 2, 0, 0)).has_value());
  EXPECT_FALSE(db.lookup_asn(Ipv4(0, 255, 255, 255)).has_value());
  EXPECT_EQ(db.lookup(Ipv4(9, 9, 9, 9)), nullptr);
}

TEST(AsDb, CountryAndRir) {
  const AsDb db = make_db();
  EXPECT_EQ(db.country_of(Ipv4(1, 0, 0, 1)), "US");
  EXPECT_EQ(db.rir_of_ip(Ipv4(1, 0, 0, 1)), Rir::kArin);
  EXPECT_EQ(db.country_of(Ipv4(2, 0, 0, 1)), "DE");
  EXPECT_EQ(db.rir_of_ip(Ipv4(2, 0, 0, 1)), Rir::kRipe);
  EXPECT_EQ(db.country_of(Ipv4(3, 3, 3, 3)), "SG");
  EXPECT_EQ(db.rir_of_ip(Ipv4(3, 3, 3, 3)), Rir::kApnic);
  EXPECT_TRUE(db.country_of(Ipv4(200, 0, 0, 1)).empty());
}

TEST(AsDb, DuplicateAsnRejected) {
  AsDb db;
  db.add_as({64500, "X", "US", AsKind::kHosting});
  EXPECT_THROW(db.add_as({64500, "Y", "DE", AsKind::kHosting}),
               std::invalid_argument);
}

TEST(AsDb, UnknownAsnPrefixRejected) {
  AsDb db;
  EXPECT_THROW(db.add_prefix(*Cidr::parse("1.0.0.0/24"), 99),
               std::invalid_argument);
}

TEST(AsDb, OverlappingPrefixRejected) {
  AsDb db = make_db();
  EXPECT_THROW(db.add_prefix(*Cidr::parse("1.0.5.0/24"), 64501),
               std::invalid_argument);
  EXPECT_THROW(db.add_prefix(*Cidr::parse("1.0.0.0/8"), 64501),
               std::invalid_argument);
  // Adjacent, non-overlapping is fine.
  EXPECT_NO_THROW(db.add_prefix(*Cidr::parse("2.0.1.0/24"), 64501));
}

TEST(AsDb, PrefixesOf) {
  const AsDb db = make_db();
  const auto prefixes = db.prefixes_of(64500);
  EXPECT_EQ(prefixes.size(), 2u);
  EXPECT_TRUE(db.prefixes_of(9999).empty());
}

TEST(AsDb, FindAs) {
  const AsDb db = make_db();
  const AsInfo* info = db.find_as(64501);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->name, "Beta Hosting");
  EXPECT_EQ(db.find_as(1), nullptr);
}

TEST(Countries, TableIsSortedAndQueryable) {
  const auto& table = all_countries();
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_LT(table[i - 1].code, table[i].code);
  }
  const auto cn = country_info("CN");
  ASSERT_TRUE(cn.has_value());
  EXPECT_EQ(cn->name, "China");
  EXPECT_EQ(cn->rir, Rir::kApnic);
  EXPECT_FALSE(country_info("XX").has_value());
}

TEST(Countries, RirAssignmentsMatchTable2Regions) {
  EXPECT_EQ(rir_of("US"), Rir::kArin);
  EXPECT_EQ(rir_of("DE"), Rir::kRipe);
  EXPECT_EQ(rir_of("CN"), Rir::kApnic);
  EXPECT_EQ(rir_of("BR"), Rir::kLacnic);
  EXPECT_EQ(rir_of("EG"), Rir::kAfrinic);
  // Unknown codes default to RIPE (GeoIP best-effort).
  EXPECT_EQ(rir_of("??"), Rir::kRipe);
}

TEST(Countries, RirNames) {
  EXPECT_EQ(rir_name(Rir::kRipe), "RIPE");
  EXPECT_EQ(rir_name(Rir::kAfrinic), "AFRINIC");
}

TEST(AsKind, Names) {
  EXPECT_EQ(as_kind_name(AsKind::kBroadbandIsp), "broadband");
  EXPECT_EQ(as_kind_name(AsKind::kCdn), "cdn");
}

}  // namespace
}  // namespace dnswild::net
