#include "worldgen/worldgen.h"

#include <gtest/gtest.h>

#include "scan/ipv4scan.h"

namespace dnswild::worldgen {
namespace {

WorldGenConfig small_config(std::uint32_t resolvers = 800,
                            std::uint64_t seed = 5) {
  WorldGenConfig config;
  config.resolver_count = resolvers;
  config.seed = seed;
  return config;
}

scan::Ipv4ScanSummary scan_world(GeneratedWorld& generated,
                                 std::uint64_t seed = 7) {
  scan::Ipv4ScanConfig config;
  config.scanner_ip = generated.scanner_ip;
  config.zone = generated.scan_zone;
  config.blacklist = &generated.blacklist;
  config.seed = seed;
  scan::Ipv4Scanner scanner(*generated.world, config);
  return scanner.scan(generated.universe);
}

TEST(WorldGen, PlannedPopulationsScale) {
  auto generated = generate_world(small_config());
  EXPECT_NEAR(generated.planned_noerror, 800, 40);
  EXPECT_NEAR(generated.planned_refused, 800 * 0.085, 5);
  EXPECT_NEAR(generated.planned_servfail, 800 * 0.055, 5);
  EXPECT_GT(generated.planned_censors, 0u);
  EXPECT_GT(generated.planned_generic_manipulators, 0u);
}

TEST(WorldGen, UniversePrefixesDoNotOverlap) {
  auto generated = generate_world(small_config());
  auto prefixes = generated.universe;
  std::sort(prefixes.begin(), prefixes.end(),
            [](const net::Cidr& a, const net::Cidr& b) {
              return a.base() < b.base();
            });
  for (std::size_t i = 1; i < prefixes.size(); ++i) {
    const auto prev_end =
        prefixes[i - 1].base().value() + prefixes[i - 1].size();
    EXPECT_LE(prev_end, prefixes[i].base().value())
        << prefixes[i - 1].to_string() << " overlaps "
        << prefixes[i].to_string();
  }
  // Nothing reserved in the universe.
  for (const auto& prefix : prefixes) {
    EXPECT_FALSE(net::is_reserved(prefix.base())) << prefix.to_string();
  }
}

TEST(WorldGen, ScanFindsCalibratedPopulations) {
  auto generated = generate_world(small_config());
  const auto summary = scan_world(generated);
  // Allowing for churned/displaced hosts and drop_rate.
  EXPECT_NEAR(static_cast<double>(summary.noerror),
              generated.planned_noerror, generated.planned_noerror * 0.12);
  EXPECT_NEAR(static_cast<double>(summary.refused),
              generated.planned_refused, generated.planned_refused * 0.2);
  EXPECT_GT(summary.servfail, 0u);
  EXPECT_GT(summary.multihomed, 0u);  // forwarders answering elsewhere
}

TEST(WorldGen, DeterministicUnderSeed) {
  auto a = generate_world(small_config(500, 42));
  auto b = generate_world(small_config(500, 42));
  const auto summary_a = scan_world(a, 9);
  const auto summary_b = scan_world(b, 9);
  EXPECT_EQ(summary_a.noerror, summary_b.noerror);
  EXPECT_EQ(summary_a.noerror_targets, summary_b.noerror_targets);
}

TEST(WorldGen, DifferentSeedsDifferentWorlds) {
  auto a = generate_world(small_config(500, 1));
  auto b = generate_world(small_config(500, 2));
  const auto summary_a = scan_world(a, 9);
  const auto summary_b = scan_world(b, 9);
  EXPECT_NE(summary_a.noerror_targets, summary_b.noerror_targets);
}

TEST(WorldGen, CountryPlanSharesAnchoredToTable1) {
  const auto& plan = default_country_plan();
  double total = 0;
  bool has_us = false, has_cn = false, has_ar = false;
  for (const auto& entry : plan) {
    total += entry.start_share;
    if (entry.code == "US") {
      has_us = true;
      EXPECT_NEAR(entry.start_share, 0.1104, 1e-6);
      EXPECT_NEAR(entry.end_factor, 0.858, 1e-6);
    }
    if (entry.code == "CN") has_cn = true;
    if (entry.code == "AR") {
      has_ar = true;
      EXPECT_NEAR(entry.end_factor, 0.25, 1e-6);  // §2.3: −75%
    }
  }
  EXPECT_TRUE(has_us && has_cn && has_ar);
  EXPECT_NEAR(total, 1.0, 0.05);
}

TEST(WorldGen, ScanZoneResolvesThroughHonestResolvers) {
  auto generated = generate_world(small_config());
  EXPECT_TRUE(generated.registry->exists(
      "px.c0a80101." + generated.scan_zone.to_string()));
}

TEST(WorldGen, GfwInstalledWhenChinaPresent) {
  auto generated = generate_world(small_config());
  ASSERT_NE(generated.gfw, nullptr);
  // Censored suffix in monitored Chinese space triggers.
  bool monitored_any = false;
  for (const auto& prefix : generated.universe) {
    if (generated.world->asdb().country_of(prefix.base()) == "CN") {
      monitored_any |=
          generated.gfw->in_scope(prefix.at(1), "facebook.com");
    }
  }
  EXPECT_TRUE(monitored_any);
}

TEST(WorldGen, BlacklistPopulated) {
  auto generated = generate_world(small_config());
  EXPECT_GT(generated.blacklist.address_space(), 0u);
}

TEST(WorldGen, PopulationDeclinesOverTheStudy) {
  auto generated = generate_world(small_config(1500, 11));
  const auto first = scan_world(generated, 3);
  generated.world->set_time_minutes(385 * 1440);
  const auto last = scan_world(generated, 4);
  // Fig. 1: 26.8M -> 17.8M is a decline to ~66%; accept a broad band.
  const double ratio = static_cast<double>(last.noerror) /
                       static_cast<double>(first.noerror);
  EXPECT_LT(ratio, 0.85);
  EXPECT_GT(ratio, 0.45);
}

}  // namespace
}  // namespace dnswild::worldgen
