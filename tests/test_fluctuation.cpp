#include "analysis/fluctuation.h"

#include <gtest/gtest.h>

namespace dnswild::analysis {
namespace {

net::AsDb make_db() {
  net::AsDb db;
  db.add_as({1, "US Telecom", "US", net::AsKind::kBroadbandIsp});
  db.add_as({2, "AR Telecom", "AR", net::AsKind::kBroadbandIsp});
  db.add_as({3, "CN Net", "CN", net::AsKind::kBroadbandIsp});
  db.add_prefix(*net::Cidr::parse("1.0.0.0/24"), 1);
  db.add_prefix(*net::Cidr::parse("2.0.0.0/24"), 2);
  db.add_prefix(*net::Cidr::parse("3.0.0.0/24"), 3);
  return db;
}

std::vector<net::Ipv4> hosts(std::uint8_t net_octet, int count) {
  std::vector<net::Ipv4> out;
  for (int i = 0; i < count; ++i) {
    out.emplace_back(net_octet, 0, 0, static_cast<std::uint8_t>(i + 1));
  }
  return out;
}

std::vector<net::Ipv4> concat(std::vector<net::Ipv4> a,
                              const std::vector<net::Ipv4>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

TEST(Fluctuation, ByCountrySortsByInitialCount) {
  const net::AsDb db = make_db();
  const auto first = concat(hosts(1, 10), concat(hosts(2, 20), hosts(3, 5)));
  const auto last = concat(hosts(1, 8), concat(hosts(2, 2), hosts(3, 6)));
  const auto rows = fluctuation_by_country(db, first, last);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].key, "AR");
  EXPECT_EQ(rows[0].first, 20u);
  EXPECT_EQ(rows[0].last, 2u);
  EXPECT_EQ(rows[0].delta(), -18);
  EXPECT_NEAR(rows[0].delta_pct(), -90.0, 1e-9);
  EXPECT_EQ(rows[1].key, "US");
  EXPECT_EQ(rows[2].key, "CN");
  EXPECT_NEAR(rows[2].delta_pct(), 20.0, 1e-9);
}

TEST(Fluctuation, UnroutedAddressesBucketAsUnknown) {
  const net::AsDb db = make_db();
  const auto rows =
      fluctuation_by_country(db, {net::Ipv4(200, 1, 1, 1)}, {});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].key, "??");
}

TEST(Fluctuation, ByRirAggregatesCountries) {
  const net::AsDb db = make_db();
  const auto first = concat(hosts(1, 4), concat(hosts(2, 6), hosts(3, 2)));
  const auto rows = fluctuation_by_rir(db, first, {});
  // US -> ARIN, AR -> LACNIC, CN -> APNIC.
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].key, "LACNIC");
  EXPECT_EQ(rows[0].first, 6u);
}

TEST(Fluctuation, ByAsDrilldownSortsByDrop) {
  const net::AsDb db = make_db();
  const auto first = concat(hosts(1, 10), hosts(2, 30));
  const auto last = concat(hosts(1, 9), hosts(2, 1));
  const auto rows = fluctuation_by_as(db, first, last);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].asn, 2u);
  EXPECT_EQ(rows[0].name, "AR Telecom");
  EXPECT_EQ(rows[0].first, 30u);
  EXPECT_EQ(rows[0].last, 1u);
}

TEST(Fluctuation, CountryHistogram) {
  const net::AsDb db = make_db();
  const auto rows = country_histogram(db, concat(hosts(3, 7), hosts(1, 2)));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].key, "CN");
  EXPECT_EQ(rows[0].first, 7u);
  EXPECT_EQ(rows[0].last, 0u);
}

TEST(Fluctuation, DeltaPctZeroBaseIsZero) {
  FluctuationRow row;
  row.first = 0;
  row.last = 10;
  EXPECT_DOUBLE_EQ(row.delta_pct(), 0.0);
}

}  // namespace
}  // namespace dnswild::analysis
