#include "resolver/snoop.h"

#include <gtest/gtest.h>

namespace dnswild::resolver {
namespace {

SnoopModel model(SnoopProfile profile) {
  SnoopModel out;
  out.profile = profile;
  out.tld_ttl = 21600;
  return out;
}

TEST(Snoop, NoCacheRespondsEmpty) {
  const SnoopModel snoop = model(SnoopProfile::kNoCache);
  const auto sample = snoop.sample("com", 1000, 42, 0);
  EXPECT_TRUE(sample.respond);
  EXPECT_FALSE(sample.cached);
}

TEST(Snoop, SingleThenSilent) {
  const SnoopModel snoop = model(SnoopProfile::kSingleThenSilent);
  EXPECT_TRUE(snoop.sample("com", 0, 42, 0).respond);
  EXPECT_FALSE(snoop.sample("com", 3600, 42, 1).respond);
  EXPECT_FALSE(snoop.sample("com", 7200, 42, 5).respond);
  // A different TLD gets its own single response.
  EXPECT_TRUE(snoop.sample("de", 7200, 42, 0).respond);
}

TEST(Snoop, StaticTtlNeverMoves) {
  const SnoopModel snoop = model(SnoopProfile::kStaticTtl);
  const auto first = snoop.sample("com", 0, 42, 0);
  const auto later = snoop.sample("com", 100000, 42, 5);
  EXPECT_TRUE(first.cached);
  EXPECT_EQ(first.remaining_ttl, later.remaining_ttl);
  EXPECT_NE(first.remaining_ttl, 0u);
}

TEST(Snoop, ZeroTtlAlwaysZero) {
  const SnoopModel snoop = model(SnoopProfile::kZeroTtl);
  for (std::int64_t t : {0, 3600, 86400}) {
    const auto sample = snoop.sample("com", t, 42, 0);
    EXPECT_TRUE(sample.cached);
    EXPECT_EQ(sample.remaining_ttl, 0u);
  }
}

TEST(Snoop, ActiveFastGapWithinFiveSeconds) {
  const SnoopModel snoop = model(SnoopProfile::kActiveFast);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto gap = snoop.refresh_gap("com", seed);
    EXPECT_GE(gap, 1u);
    EXPECT_LE(gap, 5u);  // §2.6: re-added within 5 s of expiry
  }
}

TEST(Snoop, ActiveSlowGapMinutesToHours) {
  const SnoopModel snoop = model(SnoopProfile::kActiveSlow);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto gap = snoop.refresh_gap("com", seed);
    EXPECT_GE(gap, 600u);
    EXPECT_LE(gap, 4u * 3600u);
  }
}

TEST(Snoop, ActiveTimelineDecreasesAndWraps) {
  const SnoopModel snoop = model(SnoopProfile::kActiveFast);
  // Sample every hour for 36 hours: remaining TTL decreases by 3600 within
  // a cache period and jumps back up after a refresh.
  std::uint32_t previous = 0;
  bool have_previous = false;
  int refreshes = 0;
  for (int hour = 0; hour <= 36; ++hour) {
    const auto sample = snoop.sample("com", hour * 3600, 777, hour);
    if (!sample.cached) continue;
    if (have_previous) {
      if (sample.remaining_ttl > previous) {
        ++refreshes;
      } else {
        EXPECT_EQ(previous - sample.remaining_ttl, 3600u);
      }
    }
    previous = sample.remaining_ttl;
    have_previous = true;
  }
  // ttl 21600 s + tiny gap: a refresh roughly every 6 hours.
  EXPECT_GE(refreshes, 4);
  EXPECT_LE(refreshes, 7);
}

TEST(Snoop, ActiveLongTtlDecreasesAcrossWholeWindow) {
  const SnoopModel snoop = model(SnoopProfile::kActiveLongTtl);
  std::uint32_t previous = 0;
  bool have_previous = false;
  for (int hour = 0; hour <= 36; ++hour) {
    const auto sample = snoop.sample("com", hour * 3600, 11, hour);
    ASSERT_TRUE(sample.cached);
    if (have_previous) {
      EXPECT_LT(sample.remaining_ttl, previous);
    }
    previous = sample.remaining_ttl;
    have_previous = true;
  }
}

TEST(Snoop, TtlResetStaysHighAndJumps) {
  const SnoopModel snoop = model(SnoopProfile::kTtlReset);
  int jumps_up = 0;
  std::uint32_t previous = 0;
  for (int hour = 0; hour <= 36; ++hour) {
    const auto sample = snoop.sample("com", hour * 3600, 5, hour);
    ASSERT_TRUE(sample.cached);
    EXPECT_GE(sample.remaining_ttl, snoop.tld_ttl / 2);  // never near expiry
    if (hour > 0 && sample.remaining_ttl > previous) ++jumps_up;
    previous = sample.remaining_ttl;
  }
  EXPECT_GT(jumps_up, 5);  // resets ahead of expiration (§2.6)
}

TEST(Snoop, DeterministicPerHostAndTld) {
  const SnoopModel snoop = model(SnoopProfile::kActiveSlow);
  EXPECT_EQ(snoop.sample("com", 7200, 42, 2).remaining_ttl,
            snoop.sample("com", 7200, 42, 2).remaining_ttl);
  // Different hosts and TLDs have independent phases.
  EXPECT_NE(snoop.refresh_gap("com", 1), snoop.refresh_gap("com", 2));
}

}  // namespace
}  // namespace dnswild::resolver
