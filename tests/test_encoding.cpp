#include "scan/encoding.h"

#include <gtest/gtest.h>

namespace dnswild::scan {
namespace {

TEST(ProbeName, BuildAndRecover) {
  const dns::Name zone = dns::Name::must_parse("probe.study.example");
  const net::Ipv4 target(192, 168, 1, 200);
  const dns::Name probe = make_probe_name("kx7f2a", target, zone);
  EXPECT_EQ(probe.to_string(), "kx7f2a.c0a801c8.probe.study.example");
  const auto recovered = target_from_probe_name(probe);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, target);
}

TEST(ProbeName, RecoverIsCaseInsensitive) {
  const auto name = dns::Name::must_parse("PX.C0A801C8.zone.example");
  EXPECT_EQ(target_from_probe_name(name), net::Ipv4(192, 168, 1, 200));
}

TEST(ProbeName, MalformedNamesRejected) {
  EXPECT_FALSE(target_from_probe_name(
                   dns::Name::must_parse("tooshort.example"))
                   .has_value());
  EXPECT_FALSE(target_from_probe_name(
                   dns::Name::must_parse("px.nothex12.zone.example"))
                   .has_value());
  EXPECT_FALSE(target_from_probe_name(
                   dns::Name::must_parse("px.c0a801.zone.example"))
                   .has_value());
  EXPECT_FALSE(target_from_probe_name(dns::Name{}).has_value());
}

class ResolverIdRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ResolverIdRoundTrip, ThroughTxidAndPort) {
  const std::uint32_t id = GetParam();
  const dns::Name domain = dns::Name::must_parse("facebook.com");
  const std::uint16_t base_port = 40000;
  const EncodedQuery encoded = encode_resolver_id(id, domain, base_port);

  // Simulate a resolver echoing the question and answering to our port.
  dns::Message response;
  response.header.qr = true;
  response.header.id = encoded.txid;
  response.questions.push_back(
      dns::Question{encoded.name, dns::RType::kA, dns::RClass::kIN});
  const auto decoded =
      decode_resolver_id(response, encoded.src_port, base_port);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->resolver_id, id);
  EXPECT_FALSE(decoded->used_case_fallback);
}

TEST_P(ResolverIdRoundTrip, ThroughCaseBitsWhenPortMangled) {
  const std::uint32_t id = GetParam();
  const dns::Name domain = dns::Name::must_parse("facebook.com");
  const EncodedQuery encoded = encode_resolver_id(id, domain, 40000);

  dns::Message response;
  response.header.qr = true;
  response.header.id = encoded.txid;
  response.questions.push_back(
      dns::Question{encoded.name, dns::RType::kA, dns::RClass::kIN});
  // The device answered to a fresh ephemeral port (§3.3).
  const auto decoded = decode_resolver_id(response, 33517, 40000);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->resolver_id, id);
  EXPECT_TRUE(decoded->used_case_fallback);
}

INSTANTIATE_TEST_SUITE_P(Ids, ResolverIdRoundTrip,
                         ::testing::Values(0u, 1u, 0xffffu, 0x10000u,
                                           0x1234567u, kMaxResolverId,
                                           19999999u, 0x1000000u));

TEST(ResolverId, PortWindowUsesNinePorts) {
  // §3.3: 9 bits in the source port = 2^9 distinct ports.
  const dns::Name domain = dns::Name::must_parse("example.com");
  const auto low = encode_resolver_id(0, domain, 40000);
  const auto high = encode_resolver_id(kMaxResolverId, domain, 40000);
  EXPECT_EQ(low.src_port, 40000);
  EXPECT_EQ(high.src_port, 40000 + 511);
}

TEST(ResolverId, ShortNameFallsBackGracefully) {
  // "t.co" has only 3 letters: the case channel carries 3 bits, the port
  // channel still carries all 9.
  const dns::Name domain = dns::Name::must_parse("t.co");
  const std::uint32_t id = (0x155u << 16) | 0xabcd;
  const EncodedQuery encoded = encode_resolver_id(id, domain, 40000);
  EXPECT_EQ(encoded.case_bits_used, 3u);
  dns::Message response;
  response.header.qr = true;
  response.header.id = encoded.txid;
  response.questions.push_back(
      dns::Question{encoded.name, dns::RType::kA, dns::RClass::kIN});
  const auto by_port = decode_resolver_id(response, encoded.src_port, 40000);
  ASSERT_TRUE(by_port.has_value());
  EXPECT_EQ(by_port->resolver_id, id);
  // Case fallback recovers only the low 3 of the high bits.
  const auto by_case = decode_resolver_id(response, 1234, 40000);
  ASSERT_TRUE(by_case.has_value());
  EXPECT_EQ(by_case->resolver_id & 0xffffu, id & 0xffffu);
  EXPECT_EQ((by_case->resolver_id >> 16) & 0x7u, (id >> 16) & 0x7u);
}

TEST(ResolverId, NoQuestionFails) {
  dns::Message response;
  response.header.qr = true;
  EXPECT_FALSE(decode_resolver_id(response, 40000, 40000).has_value());
}

TEST(ResolverId, TwentyFiveBitBudgetCoversTwentyMillion) {
  // ceil(log2(20,000,000)) = 25 (§3.3).
  EXPECT_GE(kMaxResolverId + 1, 20000000u);
  EXPECT_EQ(kIdBits, 25u);
  EXPECT_EQ(kTxidBits + kPortBits, kIdBits);
}

}  // namespace
}  // namespace dnswild::scan
