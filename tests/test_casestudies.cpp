#include "core/casestudies.h"

#include <gtest/gtest.h>

#include "http/factory.h"
#include "http/server.h"
#include "util/rng.h"

namespace dnswild::core {
namespace {

// Hand-assembled StudyData exercising each §4.2/§4.3 detector exactly once.
class CaseStudiesTest : public ::testing::Test {
 protected:
  CaseStudiesTest() : world_(1) {
    world_.asdb().add_as({1, "TR Telecom", "TR", net::AsKind::kBroadbandIsp});
    world_.asdb().add_prefix(*net::Cidr::parse("1.0.0.0/24"), 1);
    world_.asdb().add_as({2, "US Host", "US", net::AsKind::kHosting});
    world_.asdb().add_prefix(*net::Cidr::parse("2.0.0.0/24"), 2);

    resolvers_ = {net::Ipv4(1, 0, 0, 10), net::Ipv4(1, 0, 0, 11),
                  net::Ipv4(2, 0, 0, 10)};

    // Domains: several real sets so the proxy check can span many.
    for (const char* name :
         {"facebook.com", "paypal.com", "update.adobe.com",
          "ads.doubleclick.com", "google.com", "amazon.com",
          "wikipedia.org"}) {
      domains_.push_back(StudyDomain{name, SiteCategory::kAlexa, true,
                                     false});
    }
    domains_.push_back(
        StudyDomain{"smtp.gmail.com", SiteCategory::kMail, true, true});

    // Ground truth for every existing domain.
    for (const auto& domain : domains_) {
      GroundTruthPage gt;
      gt.domain = domain.name;
      gt.body = http::legit_site(domain.name, domain.category, 0, 47);
      gt.features = http::extract_features(gt.body);
      if (domain.is_mx_host) {
        gt.mail_banners.emplace_back(25, "220 smtp.gmail.com ESMTP ready\r\n");
      }
      ground_truth_.push_back(std::move(gt));
    }
  }

  // Adds a tuple + acquired page and classification entry.
  void add_tuple(std::uint32_t resolver_id, std::uint16_t domain_index,
                 net::Ipv4 answer_ip, std::string body, Label label,
                 bool dual = false) {
    scan::TupleRecord record;
    record.resolver_id = resolver_id;
    record.domain_index = domain_index;
    record.responded = true;
    record.rcode = dns::RCode::kNoError;
    record.ips = {answer_ip};
    record.dual_response = dual;
    records_.push_back(std::move(record));
    verdicts_.push_back(TupleVerdict::kUnknown);

    AcquiredPage page;
    page.record_index = records_.size() - 1;
    page.ip = answer_ip;
    page.connected = !body.empty();
    page.status = body.empty() ? 0 : 200;
    page.body = std::move(body);
    page.body_hash = util::fnv1a(page.body);
    pages_.push_back(std::move(page));

    ClassifiedTuple tuple;
    tuple.record_index = records_.size() - 1;
    tuple.label = label;
    classification_.tuples.push_back(tuple);
  }

  StudyData data() {
    StudyData out;
    out.resolvers = &resolvers_;
    out.records = &records_;
    out.verdicts = &verdicts_;
    out.pages = &pages_;
    out.classification = &classification_;
    out.ground_truth = &ground_truth_;
    out.domains = &domains_;
    out.asdb = &world_.asdb();
    return out;
  }

  net::World world_;
  std::vector<net::Ipv4> resolvers_;
  std::vector<StudyDomain> domains_;
  std::vector<scan::TupleRecord> records_;
  std::vector<TupleVerdict> verdicts_;
  std::vector<AcquiredPage> pages_;
  ClassificationResult classification_;
  std::vector<GroundTruthPage> ground_truth_;
};

TEST_F(CaseStudiesTest, CensorshipReportCountsLandingsAndCompliance) {
  const net::Ipv4 landing(1, 0, 0, 99);
  add_tuple(0, 0, landing, http::censorship_page("TR", 1),
            Label::kCensorship);
  add_tuple(1, 0, landing, http::censorship_page("TR", 1),
            Label::kCensorship);
  // Resolver 2 (US) answers the same domain honestly -> in denominator.
  add_tuple(2, 0, net::Ipv4(2, 0, 0, 50), "<html>legit</html>",
            Label::kMisc);
  // An injected (dual) tuple with no content: censorship without landing.
  add_tuple(0, 4, net::Ipv4(123, 45, 67, 89), "", Label::kCensorship, true);

  const CensorshipReport report = censorship_report(data());
  EXPECT_EQ(report.censorship_tuples, 3u);
  EXPECT_EQ(report.dual_response_tuples, 1u);
  ASSERT_EQ(report.landing_ips.size(), 1u);
  EXPECT_EQ(report.landing_ips[0], landing);
  EXPECT_EQ(report.landing_countries,
            (std::vector<std::string>{"TR"}));
  ASSERT_FALSE(report.censoring_by_country.empty());
  EXPECT_EQ(report.censoring_by_country[0].first, "TR");
  EXPECT_EQ(report.censoring_by_country[0].second, 2u);
  // Compliance: both TR resolvers censor; the US one does not appear.
  ASSERT_FALSE(report.compliance.empty());
  EXPECT_EQ(report.compliance[0].country, "TR");
  EXPECT_EQ(report.compliance[0].censoring, 2u);
  EXPECT_EQ(report.compliance[0].responding, 2u);
  EXPECT_DOUBLE_EQ(report.compliance[0].fraction(), 1.0);
}

TEST_F(CaseStudiesTest, GeoHistogramSplitsAllVsUnexpected) {
  add_tuple(0, 0, net::Ipv4(9, 9, 9, 9), "", Label::kUnclassified);
  // A legitimate tuple (verdict overridden below).
  add_tuple(2, 0, net::Ipv4(2, 0, 0, 50), "", Label::kUnclassified);
  verdicts_[1] = TupleVerdict::kLegitimate;

  const GeoHistogram histogram = geo_histogram(data(), {"facebook.com"});
  ASSERT_EQ(histogram.all.size(), 2u);  // TR and US respond
  ASSERT_EQ(histogram.unexpected.size(), 1u);
  EXPECT_EQ(histogram.unexpected[0].first, "TR");
}

TEST_F(CaseStudiesTest, ProxyDetectionTlsVsHttpOnly) {
  // One address answers >= 5 domains with GT-similar content.
  const net::Ipv4 proxy(2, 0, 0, 77);
  for (std::uint16_t d = 0; d < 6; ++d) {
    add_tuple(0, d, proxy,
              http::legit_site(domains_[d].name, domains_[d].category, 0,
                               991),
              Label::kMisc);
  }
  const CaseStudyReport report = case_study_report(data(), world_,
                                                   net::Ipv4(9, 0, 0, 1));
  EXPECT_EQ(report.proxy_ips_http_only, 1u);
  EXPECT_EQ(report.proxy_ips_tls, 0u);
  EXPECT_EQ(report.proxy_resolvers_http_only, 1u);
}

TEST_F(CaseStudiesTest, TlsProxyRecognizedViaHandshake) {
  const net::Ipv4 proxy(2, 0, 0, 78);
  net::HostConfig host_config;
  host_config.attachment.ip = proxy;
  const net::HostId id = world_.add_host(host_config);
  const http::CertOracle certs =
      [](const std::string& host) -> std::optional<net::Certificate> {
    net::Certificate cert;
    cert.common_name = host;
    return cert;
  };
  world_.set_tcp_service(
      id, 443,
      std::make_unique<http::ProxyServer>(
          [](const http::HttpRequest&) { return std::nullopt; }, certs,
          true));
  for (std::uint16_t d = 0; d < 6; ++d) {
    add_tuple(1, d, proxy,
              http::legit_site(domains_[d].name, domains_[d].category, 0,
                               992),
              Label::kMisc);
  }
  const CaseStudyReport report = case_study_report(data(), world_,
                                                   net::Ipv4(9, 0, 0, 1));
  EXPECT_EQ(report.proxy_ips_tls, 1u);
  EXPECT_EQ(report.proxy_resolvers_tls, 1u);
}

TEST_F(CaseStudiesTest, PhishingDetected) {
  add_tuple(0, 1, net::Ipv4(2, 0, 0, 66), http::phishing_paypal(1),
            Label::kLogin);
  const CaseStudyReport report = case_study_report(data(), world_,
                                                   net::Ipv4(9, 0, 0, 1));
  EXPECT_EQ(report.phishing_ips, 1u);
  EXPECT_EQ(report.phishing_resolvers, 1u);
  EXPECT_EQ(report.paypal_phish_ips, 1u);
  EXPECT_EQ(report.paypal_phish_resolvers, 1u);
}

TEST_F(CaseStudiesTest, LegitBankingPageIsNotPhishing) {
  // The genuine PayPal representation also has a password form, but it IS
  // the ground truth: must not be flagged.
  add_tuple(0, 1, net::Ipv4(2, 0, 0, 66),
            http::legit_site("paypal.com", SiteCategory::kAlexa, 0, 47),
            Label::kMisc);
  const CaseStudyReport report = case_study_report(data(), world_,
                                                   net::Ipv4(9, 0, 0, 1));
  EXPECT_EQ(report.phishing_ips, 0u);
}

TEST_F(CaseStudiesTest, AdTamperAndBlankingDetected) {
  const std::string original =
      http::legit_site("ads.doubleclick.com", SiteCategory::kAds, 0, 47);
  add_tuple(0, 3, net::Ipv4(2, 0, 0, 60),
            http::tamper_ads(original, http::AdTamper::kInjectBanner, 1),
            Label::kMisc);
  add_tuple(1, 3, net::Ipv4(2, 0, 0, 61),
            http::tamper_ads(original, http::AdTamper::kEmptyPlaceholder, 1),
            Label::kMisc);
  const CaseStudyReport report = case_study_report(data(), world_,
                                                   net::Ipv4(9, 0, 0, 1));
  EXPECT_EQ(report.ad_tamper_resolvers, 1u);
  EXPECT_EQ(report.ad_tamper_ips, 1u);
  EXPECT_EQ(report.ad_blanking_resolvers, 1u);
}

TEST_F(CaseStudiesTest, MalwareUpdateDetected) {
  add_tuple(0, 2, net::Ipv4(2, 0, 0, 62),
            http::malware_update_page(true, 1), Label::kMisc);
  const CaseStudyReport report = case_study_report(data(), world_,
                                                   net::Ipv4(9, 0, 0, 1));
  EXPECT_EQ(report.malware_resolvers, 1u);
  EXPECT_EQ(report.malware_ips, 1u);
}

TEST_F(CaseStudiesTest, MailInterceptionCounters) {
  // MX tuple pointing at a host that listens and mimics the real banner.
  scan::TupleRecord record;
  record.resolver_id = 0;
  record.domain_index = 7;  // smtp.gmail.com
  record.responded = true;
  record.ips = {net::Ipv4(2, 0, 0, 63)};
  records_.push_back(record);
  verdicts_.push_back(TupleVerdict::kUnknown);
  AcquiredPage page;
  page.record_index = records_.size() - 1;
  page.ip = net::Ipv4(2, 0, 0, 63);
  page.mail_banners.emplace_back(25, "220 smtp.gmail.com ESMTP ready\r\n");
  pages_.push_back(page);
  ClassifiedTuple tuple;
  tuple.record_index = records_.size() - 1;
  tuple.label = Label::kUnclassified;
  classification_.tuples.push_back(tuple);

  // Another MX tuple pointing at a dead address.
  add_tuple(1, 7, net::Ipv4(2, 0, 0, 64), "", Label::kUnclassified);

  const CaseStudyReport report = case_study_report(data(), world_,
                                                   net::Ipv4(9, 0, 0, 1));
  EXPECT_EQ(report.mx_suspicious_resolvers, 2u);
  EXPECT_EQ(report.mail_listening_resolvers, 1u);
  EXPECT_EQ(report.mail_listening_ips, 1u);
  EXPECT_EQ(report.mail_matching_banner_resolvers, 1u);
}

}  // namespace
}  // namespace dnswild::core
