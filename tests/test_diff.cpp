#include "cluster/diff.h"

#include <gtest/gtest.h>

#include "http/factory.h"

namespace dnswild::cluster {
namespace {

using http::tag_id;

std::vector<std::uint16_t> seq(std::initializer_list<const char*> tags) {
  std::vector<std::uint16_t> out;
  for (const char* tag : tags) out.push_back(tag_id(tag));
  return out;
}

TEST(TagDiff, IdenticalSequencesEmptyDelta) {
  const auto reference = seq({"html", "body", "p"});
  const TagDelta delta = tag_diff(reference, reference);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.total_changes(), 0u);
}

TEST(TagDiff, PureInsertionDetected) {
  const auto reference = seq({"html", "body", "p"});
  const auto unknown = seq({"html", "body", "script", "p"});
  const TagDelta delta = tag_diff(reference, unknown);
  EXPECT_TRUE(delta.removed.empty());
  ASSERT_EQ(delta.added.size(), 1u);
  EXPECT_EQ(delta.added.at(tag_id("script")), 1);
}

TEST(TagDiff, PureRemovalDetected) {
  const auto reference = seq({"html", "body", "img", "img", "p"});
  const auto unknown = seq({"html", "body", "p"});
  const TagDelta delta = tag_diff(reference, unknown);
  EXPECT_TRUE(delta.added.empty());
  EXPECT_EQ(delta.removed.at(tag_id("img")), 2);
  EXPECT_EQ(delta.total_changes(), 2u);
}

TEST(TagDiff, SubstitutionIsAddPlusRemove) {
  const auto reference = seq({"div", "p", "div"});
  const auto unknown = seq({"div", "script", "div"});
  const TagDelta delta = tag_diff(reference, unknown);
  EXPECT_EQ(delta.added.at(tag_id("script")), 1);
  EXPECT_EQ(delta.removed.at(tag_id("p")), 1);
}

TEST(TagDiff, EmptyInputs) {
  const TagDelta from_empty = tag_diff({}, seq({"p", "p"}));
  EXPECT_EQ(from_empty.added.at(tag_id("p")), 2);
  EXPECT_TRUE(from_empty.removed.empty());
  const TagDelta to_empty = tag_diff(seq({"p"}), {});
  EXPECT_EQ(to_empty.removed.at(tag_id("p")), 1);
}

TEST(TagDiff, InjectedScriptInRealPage) {
  // The paper's motivating case: a known page plus one injected script.
  const auto original =
      http::legit_site("ads.example", http::SiteCategory::kAds, 0, 1);
  const auto tampered =
      http::tamper_ads(original, http::AdTamper::kSuspiciousJs, 1);
  const auto ref_features = http::extract_features(original);
  const auto unknown_features = http::extract_features(tampered);
  const TagDelta delta =
      tag_diff(ref_features.tag_sequence, unknown_features.tag_sequence);
  EXPECT_FALSE(delta.empty());
  EXPECT_GE(delta.added.count(tag_id("script")), 1u);
  EXPECT_LE(delta.total_changes(), 4u);  // a small modification
}

TEST(DeltaDistance, IdenticalDeltasZero) {
  TagDelta a;
  a.added[tag_id("script")] = 1;
  EXPECT_DOUBLE_EQ(delta_distance(a, a), 0.0);
}

TEST(DeltaDistance, DisjointDeltasOne) {
  TagDelta a, b;
  a.added[tag_id("script")] = 1;
  b.added[tag_id("img")] = 1;
  // Added sets disjoint (distance 1), removed sets both empty (distance 0).
  EXPECT_DOUBLE_EQ(delta_distance(a, b), 0.5);
}

TEST(MostSimilarReference, PicksTheRightGroundTruth) {
  std::vector<http::PageFeatures> references;
  references.push_back(http::extract_features(http::legit_site(
      "bank.example", http::SiteCategory::kBanking, 0, 1)));
  references.push_back(http::extract_features(http::legit_site(
      "news.example", http::SiteCategory::kAlexa, 0, 1)));
  references.push_back(
      http::extract_features(http::parking_page("p.example", 1)));

  // A slightly different fetch of the banking page must match reference 0.
  const auto unknown = http::extract_features(http::legit_site(
      "bank.example", http::SiteCategory::kBanking, 0, 99));
  EXPECT_EQ(most_similar_reference(unknown, references), 0u);
}

TEST(ClusterDeltas, GroupsSameModification) {
  TagDelta script_inject;
  script_inject.added[tag_id("script")] = 1;
  TagDelta script_inject2 = script_inject;
  TagDelta banner;
  banner.added[tag_id("div")] = 1;
  banner.added[tag_id("img")] = 1;
  banner.added[tag_id("a")] = 1;

  const auto labels =
      cluster_deltas({script_inject, script_inject2, banner}, 0.3);
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(ClusterDeltas, EmptyInput) {
  EXPECT_TRUE(cluster_deltas({}, 0.5).empty());
}

}  // namespace
}  // namespace dnswild::cluster
