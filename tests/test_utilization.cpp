#include "analysis/utilization.h"

#include <gtest/gtest.h>

#include "resolver/snoop.h"

namespace dnswild::analysis {
namespace {

using resolver::SnoopModel;
using resolver::SnoopProfile;

// Generates the hourly series the prober would collect from a resolver with
// the given snoop model (36 h, 15 TLDs as in §2.6).
std::vector<scan::SnoopSeries> series_for(SnoopProfile profile,
                                          std::uint64_t host_seed) {
  SnoopModel model;
  model.profile = profile;
  model.tld_ttl = 21600;
  static const std::vector<std::string> kTlds = {
      "br", "cn", "co.uk", "com", "de", "fr", "in", "info",
      "it", "jp", "net",   "nl",  "org", "pl", "ru"};
  std::vector<scan::SnoopSeries> out;
  for (std::uint16_t t = 0; t < kTlds.size(); ++t) {
    scan::SnoopSeries entry;
    entry.resolver_index = 0;
    entry.tld_index = t;
    int seen = 0;
    for (int hour = 0; hour <= 36; ++hour) {
      const auto model_sample =
          model.sample(kTlds[t], hour * 3600, host_seed, seen++);
      scan::SnoopSample sample;
      sample.minute = hour * 60;
      sample.responded = model_sample.respond;
      sample.cached = model_sample.cached;
      sample.remaining_ttl = model_sample.remaining_ttl;
      entry.samples.push_back(sample);
    }
    out.push_back(std::move(entry));
  }
  return out;
}

UtilizationClass classify(SnoopProfile profile, std::uint64_t seed) {
  const auto series = series_for(profile, seed);
  std::vector<const scan::SnoopSeries*> views;
  for (const auto& entry : series) views.push_back(&entry);
  return classify_utilization(views, UtilizationConfig{});
}

struct ProfileCase {
  SnoopProfile profile;
  UtilizationClass expected;
};

class ProfileRecoveryTest : public ::testing::TestWithParam<ProfileCase> {};

// Property: the utilization classifier must recover the behaviour class the
// resolver's snoop model was configured with, from samples alone.
TEST_P(ProfileRecoveryTest, ClassifierRecoversProfile) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_EQ(classify(GetParam().profile, seed), GetParam().expected)
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, ProfileRecoveryTest,
    ::testing::Values(
        ProfileCase{SnoopProfile::kNoCache,
                    UtilizationClass::kEmptyResponses},
        ProfileCase{SnoopProfile::kSingleThenSilent,
                    UtilizationClass::kSingleResponse},
        ProfileCase{SnoopProfile::kStaticTtl, UtilizationClass::kStaticTtl},
        ProfileCase{SnoopProfile::kZeroTtl, UtilizationClass::kZeroTtl},
        ProfileCase{SnoopProfile::kActiveFast,
                    UtilizationClass::kFrequentlyUsed},
        ProfileCase{SnoopProfile::kActiveSlow,
                    UtilizationClass::kActivelyUsed},
        ProfileCase{SnoopProfile::kActiveLongTtl,
                    UtilizationClass::kDecreasingOnly},
        ProfileCase{SnoopProfile::kTtlReset, UtilizationClass::kTtlReset}));

TEST(Utilization, UnreachableWhenNothingResponds) {
  scan::SnoopSeries silent;
  silent.samples.resize(37);  // all default: responded = false
  EXPECT_EQ(classify_utilization({&silent}, UtilizationConfig{}),
            UtilizationClass::kUnreachable);
}

TEST(Utilization, SummarizeGroupsByResolver) {
  auto fast = series_for(SnoopProfile::kActiveFast, 3);
  auto empty = series_for(SnoopProfile::kNoCache, 4);
  for (auto& entry : empty) entry.resolver_index = 1;
  std::vector<scan::SnoopSeries> all;
  all.insert(all.end(), fast.begin(), fast.end());
  all.insert(all.end(), empty.begin(), empty.end());

  const auto report = summarize_utilization(all, 3, UtilizationConfig{});
  EXPECT_EQ(report.total, 3u);
  EXPECT_EQ(report.responded_any, 2u);  // resolver 2 has no series at all
  EXPECT_EQ(report.per_class[static_cast<int>(
                UtilizationClass::kFrequentlyUsed)],
            1u);
  EXPECT_EQ(report.per_class[static_cast<int>(
                UtilizationClass::kEmptyResponses)],
            1u);
  EXPECT_EQ(report.per_class[static_cast<int>(
                UtilizationClass::kUnreachable)],
            1u);
  EXPECT_EQ(report.in_use(), 1u);
}

TEST(Utilization, ClassNamesAreDistinct) {
  EXPECT_NE(utilization_class_name(UtilizationClass::kFrequentlyUsed),
            utilization_class_name(UtilizationClass::kActivelyUsed));
  EXPECT_EQ(utilization_class_name(UtilizationClass::kTtlReset),
            "TTL reset / LB group");
}

}  // namespace
}  // namespace dnswild::analysis
