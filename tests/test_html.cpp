#include "http/html.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace dnswild::http {
namespace {

TEST(TagId, InterningIsStable) {
  const auto a = tag_id("div");
  const auto b = tag_id("DIV");
  EXPECT_EQ(a, b);
  EXPECT_EQ(tag_name(a), "div");
  EXPECT_NE(tag_id("span"), a);
}

TEST(Tokenize, BasicStructure) {
  const auto tokens = tokenize("<html><body><p>text</p></body></html>");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].name, "html");
  EXPECT_FALSE(tokens[0].closing);
  EXPECT_EQ(tokens[3].name, "p");
  EXPECT_TRUE(tokens[3].closing);
}

TEST(Tokenize, AttributesAllQuotingStyles) {
  const auto tokens = tokenize(
      "<img src=\"double.gif\" alt='single' width=40 hidden>");
  ASSERT_EQ(tokens.size(), 1u);
  const TagToken& img = tokens[0];
  ASSERT_NE(img.attr("src"), nullptr);
  EXPECT_EQ(*img.attr("src"), "double.gif");
  ASSERT_NE(img.attr("alt"), nullptr);
  EXPECT_EQ(*img.attr("alt"), "single");
  ASSERT_NE(img.attr("width"), nullptr);
  EXPECT_EQ(*img.attr("width"), "40");
  ASSERT_NE(img.attr("hidden"), nullptr);
  EXPECT_EQ(img.attr("nope"), nullptr);
}

TEST(Tokenize, CaseInsensitiveNames) {
  const auto tokens = tokenize("<DiV ID=\"x\"></dIv>");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].name, "div");
  ASSERT_NE(tokens[0].attr("id"), nullptr);
}

TEST(Tokenize, CommentsSkipped) {
  const auto tokens = tokenize("<!-- <div>not a tag</div> --><p></p>");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].name, "p");
}

TEST(Tokenize, StrayAngleBracketsTolerated) {
  const auto tokens = tokenize("a < b and <em>c</em> < d");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].name, "em");
}

TEST(Tokenize, UnterminatedQuoteDoesNotCrash) {
  EXPECT_NO_THROW(tokenize("<a href=\"unterminated>text"));
}

TEST(Features, CountsAndSequence) {
  const PageFeatures features = extract_features(
      "<html><head><title>Hi</title></head>"
      "<body><div><div><p>x</p></div></div></body></html>");
  EXPECT_EQ(features.tag_counts.at(tag_id("div")), 2);
  EXPECT_EQ(features.tag_counts.at(tag_id("p")), 1);
  // Sequence holds opening tags in document order.
  ASSERT_GE(features.tag_sequence.size(), 6u);
  EXPECT_EQ(features.tag_sequence[0], tag_id("html"));
  EXPECT_EQ(features.title, "Hi");
}

TEST(Features, TitleTrimmedAndSingle) {
  const PageFeatures features =
      extract_features("<title>  Padded Title \n</title>");
  EXPECT_EQ(features.title, "Padded Title");
}

TEST(Features, ScriptsConcatenated) {
  const PageFeatures features = extract_features(
      "<script>var a=1;</script><p></p><script type=\"x\">b();</script>");
  EXPECT_EQ(features.scripts, "var a=1;b();");
}

TEST(Features, ResourcesAndLinksSortedUnique) {
  const PageFeatures features = extract_features(
      "<img src=\"b.png\"><img src=\"a.png\"><img src=\"b.png\">"
      "<a href=\"z\"></a><a href=\"y\"></a><a href=\"z\"></a>");
  EXPECT_EQ(features.resources, (std::vector<std::string>{"a.png", "b.png"}));
  EXPECT_EQ(features.links, (std::vector<std::string>{"y", "z"}));
}

TEST(Features, BodyLength) {
  EXPECT_EQ(extract_features("12345").body_length, 5u);
  EXPECT_EQ(extract_features("").body_length, 0u);
}

TEST(Iframes, FoundWithSources) {
  const auto sources = iframe_sources(
      "<iframe src=\"http://a.example/f\"></iframe>"
      "<frame src=\"/rel\"><iframe></iframe>");
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(sources[0], "http://a.example/f");
  EXPECT_EQ(sources[1], "/rel");
}

TEST(MetaRefresh, TargetExtracted) {
  EXPECT_EQ(meta_refresh_target(
                "<meta http-equiv=\"refresh\" content=\"0;url=http://t.example/\">"),
            "http://t.example/");
  EXPECT_EQ(meta_refresh_target(
                "<meta http-equiv=\"REFRESH\" content=\"5; URL=/next\">"),
            "/next");
  EXPECT_EQ(meta_refresh_target("<meta charset=\"utf-8\">"), "");
  EXPECT_EQ(meta_refresh_target(
                "<meta http-equiv=\"refresh\" content=\"30\">"),
            "");
}

}  // namespace
}  // namespace dnswild::http
