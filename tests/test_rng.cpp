#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dnswild::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  // xoshiro must not get stuck at the all-zero state.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.next());
  EXPECT_GT(seen.size(), 95u);
}

class RngBelowTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBelowTest, StaysBelowBound) {
  const std::uint64_t bound = GetParam();
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.below(bound), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBelowTest,
                         ::testing::Values(1, 2, 3, 7, 10, 255, 256, 1000,
                                           1u << 20, (1ULL << 33),
                                           std::uint64_t{0xffffffffffffULL}));

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> buckets(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++buckets[rng.below(10)];
  for (int count : buckets) {
    EXPECT_NEAR(count, draws / 10, draws / 10 * 0.1);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.weighted(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.015);
  EXPECT_NEAR(counts[3] / 100000.0, 0.6, 0.015);
}

TEST(Rng, WeightedEmptyOrZeroReturnsSize) {
  Rng rng(19);
  EXPECT_EQ(rng.weighted({}), 0u);
  EXPECT_EQ(rng.weighted({0.0, 0.0}), 2u);
  EXPECT_EQ(rng.weighted({-1.0}), 1u);
}

TEST(Rng, ForkIsIndependentOfParentFutureDraws) {
  Rng a(23);
  Rng child_a = a.fork(1);
  const auto first = child_a.next();
  // Forking with the same tag from identical parent state gives identical
  // children.
  Rng b(23);
  Rng child_b = b.fork(1);
  EXPECT_EQ(child_b.next(), first);
}

TEST(Rng, ForksWithDifferentTagsDiffer) {
  Rng a(29);
  Rng b(29);
  Rng child1 = a.fork(1);
  Rng child2 = b.fork(2);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (child1.next() == child2.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, StringForkMatchesHashFork) {
  Rng a(31), b(31);
  Rng c1 = a.fork("scanner");
  Rng c2 = b.fork(fnv1a("scanner"));
  EXPECT_EQ(c1.next(), c2.next());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(37);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[static_cast<std::size_t>(i)] = i;
  auto shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, PickReturnsElements) {
  Rng rng(41);
  const std::vector<int> values = {5, 6, 7};
  for (int i = 0; i < 50; ++i) {
    const int v = rng.pick(values);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 7);
  }
}

TEST(Fnv1a, KnownValues) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(Mix64, Deterministic) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace dnswild::util
