#include "dns/encoding0x20.h"

#include <gtest/gtest.h>

namespace dnswild::dns {
namespace {

TEST(Encoding0x20, LetterCapacity) {
  EXPECT_EQ(letter_capacity(Name::must_parse("abc.de")), 5u);
  EXPECT_EQ(letter_capacity(Name::must_parse("123.456")), 0u);
  EXPECT_EQ(letter_capacity(Name::must_parse("a1b2.c3")), 3u);
  EXPECT_EQ(letter_capacity(Name{}), 0u);
}

class CaseBitsRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CaseBitsRoundTrip, NineBitsThroughDomain) {
  const std::uint32_t bits = GetParam();
  const Name domain = Name::must_parse("facebook.com");  // 11 letters
  const auto encoded = encode_case_bits(domain, bits, 9);
  ASSERT_TRUE(encoded.has_value());
  EXPECT_TRUE(encoded->equals(domain));  // case-insensitively equal
  const auto decoded = decode_case_bits(*encoded, 9);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, bits & 0x1ff);
}

INSTANTIATE_TEST_SUITE_P(Patterns, CaseBitsRoundTrip,
                         ::testing::Values(0u, 1u, 2u, 0x155u, 0x0aau, 0x1ffu,
                                           0x100u, 0x0ffu, 7u, 256u, 511u));

TEST(Encoding0x20, CapacityTooSmall) {
  const Name tiny = Name::must_parse("t.co");  // 3 letters
  EXPECT_FALSE(encode_case_bits(tiny, 0x1ff, 9).has_value());
  EXPECT_FALSE(decode_case_bits(tiny, 9).has_value());
  // But 3 bits fit.
  const auto encoded = encode_case_bits(tiny, 0b101, 3);
  ASSERT_TRUE(encoded.has_value());
  EXPECT_EQ(decode_case_bits(*encoded, 3), 0b101u);
}

TEST(Encoding0x20, UppercaseMeansOneLsbFirst) {
  const Name domain = Name::must_parse("abcd");
  const auto encoded = encode_case_bits(domain, 0b0011, 4);
  ASSERT_TRUE(encoded.has_value());
  EXPECT_EQ(encoded->to_string(), "ABcd");
}

TEST(Encoding0x20, RemainingLettersForcedLower) {
  const Name domain = Name::must_parse("ABCDEFGH");
  const auto encoded = encode_case_bits(domain, 0b1, 1);
  ASSERT_TRUE(encoded.has_value());
  EXPECT_EQ(encoded->to_string(), "Abcdefgh");
}

TEST(Encoding0x20, NonLettersSkipped) {
  const Name domain = Name::must_parse("a1-b.c2d");
  const auto encoded = encode_case_bits(domain, 0b1010, 4);
  ASSERT_TRUE(encoded.has_value());
  EXPECT_EQ(encoded->to_string(), "a1-B.c2D");
  EXPECT_EQ(decode_case_bits(*encoded, 4), 0b1010u);
}

TEST(Encoding0x20, RandomizeKeepsEquality) {
  util::Rng rng(3);
  const Name domain = Name::must_parse("subdomain.example.com");
  const Name randomized = randomize_case(domain, rng);
  EXPECT_TRUE(randomized.equals(domain));
  // With 18 letters, identical case is essentially impossible.
  EXPECT_NE(randomized.to_string(), domain.to_string());
}

TEST(Encoding0x20, EchoMatching) {
  const Name query = Name::must_parse("FaceBook.Com");
  EXPECT_TRUE(case_echo_matches(query, Name::must_parse("FaceBook.Com")));
  EXPECT_FALSE(case_echo_matches(query, Name::must_parse("facebook.com")));
  EXPECT_FALSE(case_echo_matches(query, Name::must_parse("FaceBook.Com.x")));
}

}  // namespace
}  // namespace dnswild::dns
