#include "util/strings.h"

#include <gtest/gtest.h>

namespace dnswild::util {
namespace {

TEST(Strings, LowerUpper) {
  EXPECT_EQ(lower("AbC-12z"), "abc-12z");
  EXPECT_EQ(upper("AbC-12z"), "ABC-12Z");
  EXPECT_EQ(lower(""), "");
}

TEST(Strings, LowerIsAsciiOnly) {
  // Bytes above 0x7f must pass through untouched (no locale surprises).
  const std::string input = "\xC3\x84";
  EXPECT_EQ(lower(input), input);
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("Host", "hOST"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("host", "hosts"));
  EXPECT_FALSE(iequals("a", "b"));
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("facebook.com", "face"));
  EXPECT_FALSE(starts_with("face", "facebook"));
  EXPECT_TRUE(ends_with("facebook.com", ".com"));
  EXPECT_FALSE(ends_with("com", ".com"));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(Strings, IContains) {
  EXPECT_TRUE(icontains("ZyXEL Web Configurator", "zyxel"));
  EXPECT_TRUE(icontains("abc", ""));
  EXPECT_FALSE(icontains("ab", "abc"));
  EXPECT_TRUE(icontains("DM500PLUS login", "dm500plus login"));
  EXPECT_FALSE(icontains("dm500", "dm500plus"));
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a..b.", '.');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingle) {
  const auto parts = split("abc", '.');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, JoinInvertsSplit) {
  const std::string text = "a.b.c";
  EXPECT_EQ(join(split(text, '.'), "."), text);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y \t\r\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

class Hex32Test : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Hex32Test, RoundTrips) {
  const std::uint32_t value = GetParam();
  const std::string text = hex32(value);
  EXPECT_EQ(text.size(), 8u);
  const auto parsed = parse_hex32(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, value);
}

INSTANTIATE_TEST_SUITE_P(Values, Hex32Test,
                         ::testing::Values(0u, 1u, 0xdeadbeefu, 0xffffffffu,
                                           0x00000100u, 0xc0a80001u,
                                           0x7f000001u));

TEST(Strings, ParseHex32UpperCase) {
  EXPECT_EQ(parse_hex32("DEADBEEF"), 0xdeadbeefu);
}

TEST(Strings, ParseHex32Malformed) {
  EXPECT_FALSE(parse_hex32("").has_value());
  EXPECT_FALSE(parse_hex32("12345").has_value());       // too short
  EXPECT_FALSE(parse_hex32("123456789").has_value());   // too long
  EXPECT_FALSE(parse_hex32("1234567g").has_value());    // bad digit
  EXPECT_FALSE(parse_hex32("1234 678").has_value());
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");  // non-overlapping
  EXPECT_EQ(replace_all("abc", "x", "y"), "abc");
  EXPECT_EQ(replace_all("abc", "", "y"), "abc");  // empty pattern: no-op
  EXPECT_EQ(replace_all("</body>", "</body>", "X</body>"), "X</body>");
}

TEST(Strings, CharClassHelpers) {
  EXPECT_TRUE(is_digit_ascii('0'));
  EXPECT_TRUE(is_digit_ascii('9'));
  EXPECT_FALSE(is_digit_ascii('a'));
  EXPECT_TRUE(is_alpha_ascii('a'));
  EXPECT_TRUE(is_alpha_ascii('Z'));
  EXPECT_FALSE(is_alpha_ascii('-'));
  EXPECT_EQ(to_lower_ascii('A'), 'a');
  EXPECT_EQ(to_lower_ascii('a'), 'a');
  EXPECT_EQ(to_upper_ascii('z'), 'Z');
  EXPECT_EQ(to_upper_ascii('1'), '1');
}

}  // namespace
}  // namespace dnswild::util
