// Lazy worldgen acceptance (DESIGN.md §12): a lazily materialized world
// must be indistinguishable on the wire from the eager one built from the
// same seed — byte-identical scan summaries and masked metrics reports —
// under every thread count, cache pressure, and clock movement. Plus unit
// coverage for the pieces: HostSource derivation purity, golden pins, and
// the BindingIndex.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "net/world.h"
#include "scan/ipv4scan.h"
#include "worldgen/worldgen.h"

namespace dnswild {
namespace {

worldgen::WorldGenConfig lazy_test_config(bool lazy) {
  worldgen::WorldGenConfig config;
  config.resolver_count = 3000;
  config.seed = 1234;
  config.lazy = lazy;
  return config;
}

// One full address-space enumeration plus the masked (deterministic-only)
// metrics report — the same comparison surface as the fault-plane
// acceptance tests.
struct ScanRun {
  scan::Ipv4ScanSummary summary;
  std::string masked_metrics_json;
  net::World::LazyStats lazy_stats;
};

ScanRun scan_world(worldgen::GeneratedWorld& gen, unsigned threads = 1,
                   double spread_over_hours = 0.0) {
  scan::Ipv4ScanConfig config;
  config.scanner_ip = gen.scanner_ip;
  config.zone = gen.scan_zone;
  config.blacklist = &gen.blacklist;
  config.seed = 42;
  config.threads = threads;
  config.spread_over_hours = spread_over_hours;
  scan::Ipv4Scanner scanner(*gen.world, config);
  ScanRun run;
  run.summary = scanner.scan(gen.universe);
  run.masked_metrics_json = gen.world->metrics().to_json(true);
  run.lazy_stats = gen.world->lazy_stats();
  return run;
}

void expect_same_wire_results(const ScanRun& eager, const ScanRun& lazy) {
  EXPECT_EQ(eager.summary.probed, lazy.summary.probed);
  EXPECT_EQ(eager.summary.noerror, lazy.summary.noerror);
  EXPECT_EQ(eager.summary.refused, lazy.summary.refused);
  EXPECT_EQ(eager.summary.servfail, lazy.summary.servfail);
  EXPECT_EQ(eager.summary.multihomed, lazy.summary.multihomed);
  EXPECT_EQ(eager.summary.noerror_targets, lazy.summary.noerror_targets);
  EXPECT_EQ(eager.summary.responders, lazy.summary.responders);
  EXPECT_EQ(eager.masked_metrics_json, lazy.masked_metrics_json);
}

// The tentpole acceptance bar: lazy and eager worlds built from one seed
// answer an Internet-wide scan byte-identically.
TEST(LazyWorld, MatchesEagerScanByteForByte) {
  worldgen::GeneratedWorld eager =
      worldgen::generate_world(lazy_test_config(false));
  worldgen::GeneratedWorld lazy =
      worldgen::generate_world(lazy_test_config(true));
  ASSERT_EQ(eager.resolver_host_count, lazy.resolver_host_count);

  const ScanRun eager_run = scan_world(eager);
  const ScanRun lazy_run = scan_world(lazy);
  ASSERT_GT(eager_run.summary.noerror, 0u);
  expect_same_wire_results(eager_run, lazy_run);

  // The lazy world actually was lazy: hosts materialized on probe.
  EXPECT_GT(lazy_run.lazy_stats.materializations, 0u);
  EXPECT_EQ(eager_run.lazy_stats.materializations, 0u);
}

// Clock movement mid-scan exercises lease churn and windowed activation;
// the lazy SoA rebind path must resolve pool collisions in the same order
// as the eager host loop.
TEST(LazyWorld, MatchesEagerUnderClockChurn) {
  worldgen::GeneratedWorld eager =
      worldgen::generate_world(lazy_test_config(false));
  worldgen::GeneratedWorld lazy =
      worldgen::generate_world(lazy_test_config(true));

  const ScanRun eager_run = scan_world(eager, 1, /*spread_over_hours=*/48.0);
  const ScanRun lazy_run = scan_world(lazy, 1, /*spread_over_hours=*/48.0);
  ASSERT_GT(eager_run.summary.noerror, 0u);
  expect_same_wire_results(eager_run, lazy_run);
}

// Squeezing the service cache forces eviction + rematerialization while
// the scan is still running; because only reconstructible entries are
// evicted, the wire results must not move.
TEST(LazyWorld, EvictionNeverChangesWireBehaviour) {
  worldgen::GeneratedWorld baseline =
      worldgen::generate_world(lazy_test_config(true));
  worldgen::GeneratedWorld squeezed =
      worldgen::generate_world(lazy_test_config(true));
  // 64 shards, so this is one resident entry per shard.
  squeezed.world->set_service_cache_capacity(64);

  const ScanRun baseline_run = scan_world(baseline);
  const ScanRun squeezed_run = scan_world(squeezed);
  ASSERT_GT(baseline_run.summary.noerror, 0u);
  expect_same_wire_results(baseline_run, squeezed_run);

  EXPECT_GT(squeezed_run.lazy_stats.evictions, 0u);
  // The squeezed cache stayed near its budget instead of accumulating every
  // touched host the way the roomy baseline does. (Entries whose services
  // hold observable state ride out the squeeze by design, so the bound is
  // "well below baseline", not exactly the capacity.)
  EXPECT_GT(baseline_run.lazy_stats.resident, 512u);
  EXPECT_LT(squeezed_run.lazy_stats.resident,
            baseline_run.lazy_stats.resident / 4);
  EXPECT_EQ(squeezed_run.lazy_stats.pinned, 0u);
}

// A probe after eviction re-materializes the host and gets the same answer:
// the probe fate is a pure hash of the packet, not of service history.
TEST(LazyWorld, RematerializedHostsAnswerIdentically) {
  worldgen::GeneratedWorld gen = worldgen::generate_world(lazy_test_config(true));
  gen.world->set_service_cache_capacity(64);

  const ScanRun first = scan_world(gen);
  const std::uint64_t first_materializations =
      first.lazy_stats.materializations;
  ASSERT_GT(first.lazy_stats.evictions, 0u);

  // Re-probe the whole universe: evicted hosts come back from derivation.
  scan::Ipv4ScanConfig config;
  config.scanner_ip = gen.scanner_ip;
  config.zone = gen.scan_zone;
  config.blacklist = &gen.blacklist;
  config.seed = 42;
  scan::Ipv4Scanner scanner(*gen.world, config);
  const scan::Ipv4ScanSummary again = scanner.scan(gen.universe);

  EXPECT_GT(gen.world->lazy_stats().materializations, first_materializations);
  EXPECT_EQ(first.summary.noerror_targets, again.noerror_targets);
  EXPECT_EQ(first.summary.responders, again.responders);
}

// Materialization order depends on which worker touches a host first, so
// the masked report must be identical across thread counts.
TEST(LazyWorld, ThreadCountInvariant) {
  worldgen::GeneratedWorld one = worldgen::generate_world(lazy_test_config(true));
  worldgen::GeneratedWorld two = worldgen::generate_world(lazy_test_config(true));
  worldgen::GeneratedWorld eight =
      worldgen::generate_world(lazy_test_config(true));

  const ScanRun run1 = scan_world(one, 1);
  const ScanRun run2 = scan_world(two, 2);
  const ScanRun run8 = scan_world(eight, 8);
  ASSERT_GT(run1.summary.noerror, 0u);
  expect_same_wire_results(run1, run2);
  expect_same_wire_results(run1, run8);
}

void expect_same_config(const net::HostConfig& a, const net::HostConfig& b) {
  EXPECT_EQ(a.attachment.ip, b.attachment.ip);
  EXPECT_EQ(a.attachment.dynamic, b.attachment.dynamic);
  EXPECT_EQ(a.attachment.pool.base(), b.attachment.pool.base());
  EXPECT_EQ(a.attachment.pool.prefix_len(), b.attachment.pool.prefix_len());
  EXPECT_EQ(a.attachment.mean_lease_days, b.attachment.mean_lease_days);
  EXPECT_EQ(a.active_from_day, b.active_from_day);
  EXPECT_EQ(a.active_until_day, b.active_until_day);
  ASSERT_EQ(a.seed.has_value(), b.seed.has_value());
  if (a.seed) EXPECT_EQ(*a.seed, *b.seed);
}

// derive_config is a pure function of (source, index): calling it in any
// order, any number of times, yields the same HostConfig.
TEST(LazyWorld, DerivationIsPureAndTouchOrderIndependent) {
  worldgen::GeneratedWorld gen = worldgen::generate_world(lazy_test_config(true));
  ASSERT_NE(gen.resolver_source, nullptr);
  const net::HostSource& source = *gen.resolver_source;
  const std::uint64_t count = std::min<std::uint64_t>(
      gen.resolver_host_count, 256);

  // Forward pass, then a reverse pass, then a strided re-visit.
  std::vector<net::HostConfig> forward;
  forward.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    forward.push_back(source.derive_config(i));
  }
  for (std::uint64_t i = count; i-- > 0;) {
    expect_same_config(forward[i], source.derive_config(i));
  }
  for (std::uint64_t i = 0; i < count; i += 17) {
    expect_same_config(forward[i], source.derive_config(i));
  }
}

// Every host's derived seed is present and collision-free over a sample —
// lazy lease schedules must be independent of registration order.
TEST(LazyWorld, DerivedSeedsAreSetAndDistinct) {
  worldgen::GeneratedWorld gen = worldgen::generate_world(lazy_test_config(true));
  const net::HostSource& source = *gen.resolver_source;
  std::vector<std::uint64_t> seeds;
  const std::uint64_t count =
      std::min<std::uint64_t>(gen.resolver_host_count, 512);
  for (std::uint64_t i = 0; i < count; ++i) {
    const net::HostConfig config = source.derive_config(i);
    ASSERT_TRUE(config.seed.has_value()) << "host " << i;
    seeds.push_back(*config.seed);
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

// Golden pin: the derivation for (seed 1234, 3000 resolvers) never moves.
// These values were captured from the shared eager/lazy derivation; any
// drift silently breaks replay compatibility with recorded experiments.
TEST(LazyWorld, DerivationGoldenValues) {
  worldgen::GeneratedWorld gen = worldgen::generate_world(lazy_test_config(true));
  const net::HostSource& source = *gen.resolver_source;
  ASSERT_GE(gen.resolver_host_count, 3000u);

  const net::HostConfig h0 = source.derive_config(0);
  const net::HostConfig h1 = source.derive_config(1);
  const net::HostConfig h2000 = source.derive_config(2000);

  ASSERT_TRUE(h0.seed.has_value());
  ASSERT_TRUE(h1.seed.has_value());
  ASSERT_TRUE(h2000.seed.has_value());
  EXPECT_EQ(*h0.seed, 13961270117327150590ull);
  EXPECT_EQ(*h1.seed, 15683893307566142489ull);
  EXPECT_EQ(*h2000.seed, 12068710704245067503ull);

  // Hosts 0/1 are dynamic consumers in the first country's broadband pool;
  // host 1 drew the long-lease churn class, host 2000 lives in a later AS.
  EXPECT_TRUE(h0.attachment.dynamic);
  EXPECT_EQ(h0.attachment.pool.base().value(), 16783360u);
  EXPECT_EQ(h0.attachment.pool.prefix_len(), 21);
  EXPECT_DOUBLE_EQ(h0.attachment.mean_lease_days, 0.4);
  EXPECT_TRUE(h1.attachment.dynamic);
  EXPECT_DOUBLE_EQ(h1.attachment.mean_lease_days, 300.0);
  EXPECT_TRUE(h2000.attachment.dynamic);
  EXPECT_EQ(h2000.attachment.pool.base().value(), 16809472u);
  EXPECT_EQ(h2000.attachment.pool.prefix_len(), 23);

  // First statically attached host in the population and its fixed address.
  const net::HostConfig h62 = source.derive_config(62);
  EXPECT_FALSE(h62.attachment.dynamic);
  EXPECT_EQ(*h62.seed, 2988020982826608356ull);
  EXPECT_EQ(h62.attachment.ip.value(), 16786059u);
}

// --- BindingIndex ---------------------------------------------------------

TEST(BindingIndex, DenseRangeRoundTrip) {
  net::BindingIndex index;
  const net::Cidr range(net::Ipv4(0x0a000000), 24);  // 10.0.0.0/24
  index.register_range(range);
  EXPECT_EQ(index.range_count(), 1u);

  EXPECT_EQ(index.get(net::Ipv4(0x0a000005)), net::kNoHost);
  index.set(net::Ipv4(0x0a000005), 7);
  index.set(net::Ipv4(0x0a0000ff), 9);
  EXPECT_EQ(index.get(net::Ipv4(0x0a000005)), 7u);
  EXPECT_EQ(index.get(net::Ipv4(0x0a0000ff)), 9u);
  EXPECT_EQ(index.overflow_size(), 0u);  // both landed in dense slots

  index.erase(net::Ipv4(0x0a000005));
  EXPECT_EQ(index.get(net::Ipv4(0x0a000005)), net::kNoHost);
  EXPECT_EQ(index.get(net::Ipv4(0x0a0000ff)), 9u);
}

TEST(BindingIndex, UnregisteredAddressesFallBackToOverflow) {
  net::BindingIndex index;
  index.register_range(net::Cidr(net::Ipv4(0x0a000000), 24));

  index.set(net::Ipv4(0xc0a80101), 3);  // 192.168.1.1: outside the range
  EXPECT_EQ(index.get(net::Ipv4(0xc0a80101)), 3u);
  EXPECT_EQ(index.overflow_size(), 1u);
  index.erase(net::Ipv4(0xc0a80101));
  EXPECT_EQ(index.get(net::Ipv4(0xc0a80101)), net::kNoHost);
  EXPECT_EQ(index.overflow_size(), 0u);
}

TEST(BindingIndex, LateRegistrationMigratesOverflowEntries) {
  net::BindingIndex index;
  index.set(net::Ipv4(0x0a000042), 11);
  index.set(net::Ipv4(0x0b000001), 12);
  EXPECT_EQ(index.overflow_size(), 2u);

  index.register_range(net::Cidr(net::Ipv4(0x0a000000), 24));
  // The in-range binding migrated to a dense slot; the other stayed.
  EXPECT_EQ(index.overflow_size(), 1u);
  EXPECT_EQ(index.get(net::Ipv4(0x0a000042)), 11u);
  EXPECT_EQ(index.get(net::Ipv4(0x0b000001)), 12u);
}

TEST(BindingIndex, OverlappingRegistrationIsIgnored) {
  net::BindingIndex index;
  index.register_range(net::Cidr(net::Ipv4(0x0a000000), 24));
  index.set(net::Ipv4(0x0a000001), 5);
  index.register_range(net::Cidr(net::Ipv4(0x0a000000), 16));  // overlaps
  EXPECT_EQ(index.range_count(), 1u);
  EXPECT_EQ(index.get(net::Ipv4(0x0a000001)), 5u);

  // Disjoint second range still registers fine.
  index.register_range(net::Cidr(net::Ipv4(0x0b000000), 24));
  EXPECT_EQ(index.range_count(), 2u);
  index.set(net::Ipv4(0x0b000007), 6);
  EXPECT_EQ(index.get(net::Ipv4(0x0b000007)), 6u);
}

}  // namespace
}  // namespace dnswild
