#include "scan/ratelimit.h"

#include <gtest/gtest.h>

namespace dnswild::scan {
namespace {

TEST(TokenBucket, BurstIsFree) {
  TokenBucket bucket(10.0, 5.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(bucket.acquire(), 0.0);
  }
  EXPECT_DOUBLE_EQ(bucket.virtual_elapsed_seconds(), 0.0);
}

TEST(TokenBucket, DrainedBucketWaits) {
  TokenBucket bucket(10.0, 1.0);
  EXPECT_DOUBLE_EQ(bucket.acquire(), 0.0);
  // Empty: each packet waits 1/rate seconds.
  EXPECT_NEAR(bucket.acquire(), 0.1, 1e-9);
  EXPECT_NEAR(bucket.virtual_elapsed_seconds(), 0.1, 1e-9);
}

TEST(TokenBucket, AdvanceRefills) {
  TokenBucket bucket(10.0, 5.0);
  for (int i = 0; i < 5; ++i) bucket.acquire();
  bucket.advance(0.5);  // refills 5 tokens
  EXPECT_DOUBLE_EQ(bucket.acquire(), 0.0);
}

TEST(TokenBucket, RefillCapsAtCapacity) {
  TokenBucket bucket(10.0, 2.0);
  bucket.advance(100.0);
  EXPECT_DOUBLE_EQ(bucket.acquire(), 0.0);
  EXPECT_DOUBLE_EQ(bucket.acquire(), 0.0);
  EXPECT_GT(bucket.acquire(), 0.0);  // only 2 tokens fit
}

TEST(TokenBucket, SteadyStateMatchesRate) {
  // 1000 packets at 100 pps must consume ~10 virtual seconds.
  TokenBucket bucket(100.0, 1.0);
  for (int i = 0; i < 1000; ++i) bucket.acquire();
  EXPECT_NEAR(bucket.virtual_elapsed_seconds(), 10.0, 0.2);
}

}  // namespace
}  // namespace dnswild::scan
