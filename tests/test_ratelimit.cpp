#include "scan/ratelimit.h"

#include <gtest/gtest.h>

#include "scan/retry.h"

namespace dnswild::scan {
namespace {

TEST(TokenBucket, BurstIsFree) {
  TokenBucket bucket(10.0, 5.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(bucket.acquire(), 0.0);
  }
  EXPECT_DOUBLE_EQ(bucket.virtual_elapsed_seconds(), 0.0);
}

TEST(TokenBucket, DrainedBucketWaits) {
  TokenBucket bucket(10.0, 1.0);
  EXPECT_DOUBLE_EQ(bucket.acquire(), 0.0);
  // Empty: each packet waits 1/rate seconds.
  EXPECT_NEAR(bucket.acquire(), 0.1, 1e-9);
  EXPECT_NEAR(bucket.virtual_elapsed_seconds(), 0.1, 1e-9);
}

TEST(TokenBucket, AdvanceRefills) {
  TokenBucket bucket(10.0, 5.0);
  for (int i = 0; i < 5; ++i) bucket.acquire();
  bucket.advance(0.5);  // refills 5 tokens
  EXPECT_DOUBLE_EQ(bucket.acquire(), 0.0);
}

TEST(TokenBucket, RefillCapsAtCapacity) {
  TokenBucket bucket(10.0, 2.0);
  bucket.advance(100.0);
  EXPECT_DOUBLE_EQ(bucket.acquire(), 0.0);
  EXPECT_DOUBLE_EQ(bucket.acquire(), 0.0);
  EXPECT_GT(bucket.acquire(), 0.0);  // only 2 tokens fit
}

TEST(TokenBucket, SteadyStateMatchesRate) {
  // 1000 packets at 100 pps must consume ~10 virtual seconds.
  TokenBucket bucket(100.0, 1.0);
  for (int i = 0; i < 1000; ++i) bucket.acquire();
  EXPECT_NEAR(bucket.virtual_elapsed_seconds(), 10.0, 0.2);
}

TEST(TokenBucket, ElapsedClockPinnedAcrossMixedSequence) {
  // Regression for refill drift: the bucket refills from its own elapsed
  // clock, so waits themselves mint tokens and a mixed acquire/advance
  // sequence lands on exactly predictable virtual timestamps.
  TokenBucket bucket(10.0, 2.0);
  bucket.acquire();  // burst token, free
  bucket.acquire();  // burst token, free
  EXPECT_NEAR(bucket.acquire(), 0.1, 1e-9);  // drained: 1/rate wait
  EXPECT_NEAR(bucket.acquire(), 0.1, 1e-9);
  EXPECT_NEAR(bucket.virtual_elapsed_seconds(), 0.2, 1e-9);

  bucket.advance(0.35);  // external wait (reply latency / retry backoff)
  EXPECT_NEAR(bucket.virtual_elapsed_seconds(), 0.55, 1e-9);
  // 0.35 s at 10 pps minted 3.5 tokens, capped at the burst of 2.
  EXPECT_DOUBLE_EQ(bucket.acquire(), 0.0);
  EXPECT_DOUBLE_EQ(bucket.acquire(), 0.0);
  EXPECT_NEAR(bucket.acquire(), 0.1, 1e-9);
  EXPECT_NEAR(bucket.virtual_elapsed_seconds(), 0.65, 1e-9);
}

TEST(TokenBucket, DrainWaitsDoNotInflateElapsedTime) {
  // Steady drain: after the burst, every packet costs exactly 1/rate — the
  // waits must not double-charge the clock by refilling from thin air.
  TokenBucket bucket(10.0, 2.0);
  for (int i = 0; i < 12; ++i) bucket.acquire();
  EXPECT_NEAR(bucket.virtual_elapsed_seconds(), 1.0, 1e-9);
}

TEST(TokenBucket, ChargeBudgetAdvancesAndRefills) {
  TokenBucket bucket(10.0, 1.0);
  bucket.acquire();  // drain the single burst token
  RetryOutcome outcome;
  outcome.waited_seconds = 0.35;
  charge_budget(bucket, outcome);
  EXPECT_NEAR(bucket.virtual_elapsed_seconds(), 0.35, 1e-9);
  EXPECT_DOUBLE_EQ(bucket.acquire(), 0.0);  // the wait minted a token

  RetryOutcome nothing;  // zero-wait outcomes must not touch the clock
  charge_budget(bucket, nothing);
  EXPECT_NEAR(bucket.virtual_elapsed_seconds(), 0.35, 1e-9);
}

}  // namespace
}  // namespace dnswild::scan
