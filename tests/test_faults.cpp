// Fault-injection plane + unified retry policy (DESIGN.md §9).
//
// Three contracts under test, mirroring the acceptance criteria:
//   1. Determinism — identical seed + FaultPlan produce byte-identical
//      scan results and fault counters for 1/2/8 worker threads.
//   2. Recovery — under 20% burst loss a RetryPolicy with three
//      retransmissions recovers >= 95% of the zero-loss responder
//      population, while a single-shot policy does not.
//   3. Graceful degradation — a pipeline stage exceeding its error budget
//      yields a *completed* StudyReport with a populated degradations
//      entry instead of a throw.
#include "net/faults.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/pipeline.h"
#include "dns/message.h"
#include "fixtures.h"
#include "net/retry.h"
#include "scan/domain_scan.h"
#include "scan/ipv4scan.h"
#include "scan/retry.h"
#include "worldgen/worldgen.h"

namespace dnswild {
namespace {

using test::make_mini_world;
using test::MiniWorld;

// A syntactically valid A query, the payload every probe here carries.
net::UdpPacket dns_query(net::Ipv4 src, net::Ipv4 dst, std::uint16_t txid,
                         std::uint32_t seq) {
  dns::Message query = dns::Message::make_query(
      txid, dns::Name::must_parse("good.example"), dns::RType::kA);
  net::UdpPacket packet;
  packet.src = src;
  packet.src_port = 5353;
  packet.dst = dst;
  packet.dst_port = 53;
  packet.seq = seq;
  packet.payload = query.encode();
  return packet;
}

MiniWorld world_with_resolvers(int count, std::uint64_t seed = 11) {
  MiniWorld mini = make_mini_world(seed);
  resolver::ResolverConfig honest;
  honest.seed = 1;
  for (int i = 0; i < count; ++i) {
    mini.add_resolver(net::Ipv4(1, 0, 0, static_cast<std::uint8_t>(10 + i)),
                      honest);
  }
  return mini;
}

net::FaultProfile profile_for(net::Cidr network) {
  net::FaultProfile profile;
  profile.network = network;
  return profile;
}

const net::Cidr kTestNet(net::Ipv4(1, 0, 0, 0), 24);

// --- FaultPlan unit behaviour -------------------------------------------

TEST(FaultPlan, ValidatesProfiles) {
  net::FaultPlan plan;
  net::FaultProfile bad_rate = profile_for(kTestNet);
  bad_rate.episode_rate = 1.5;
  EXPECT_THROW(plan.add_profile(bad_rate), std::invalid_argument);
  net::FaultProfile bad_bucket = profile_for(kTestNet);
  bad_bucket.bucket_minutes = 0;
  EXPECT_THROW(plan.add_profile(bad_bucket), std::invalid_argument);
  EXPECT_TRUE(plan.empty());
  plan.add_profile(profile_for(kTestNet));
  EXPECT_EQ(plan.size(), 1u);
}

TEST(FaultPlan, MatchPicksFirstContainingProfile) {
  net::FaultPlan plan;
  plan.add_profile(profile_for(net::Cidr(net::Ipv4(1, 0, 0, 0), 25)));
  plan.add_profile(profile_for(kTestNet));
  std::size_t index = 99;
  ASSERT_NE(plan.match(net::Ipv4(1, 0, 0, 5), &index), nullptr);
  EXPECT_EQ(index, 0u);
  ASSERT_NE(plan.match(net::Ipv4(1, 0, 0, 200), &index), nullptr);
  EXPECT_EQ(index, 1u);
  EXPECT_EQ(plan.match(net::Ipv4(2, 0, 0, 1), nullptr), nullptr);
}

TEST(FaultPlan, EpisodesAreDeterministicAndBursty) {
  net::FaultPlan plan;
  net::FaultProfile profile = profile_for(kTestNet);
  profile.episode_rate = 0.15;
  profile.episode_mean_buckets = 4.0;
  profile.bucket_minutes = 1;  // one bucket per minute: fine-grained walk
  plan.add_profile(profile);

  const net::Ipv4 dst(1, 0, 0, 42);
  int active = 0;
  int transitions = 0;
  bool last = false;
  const int total = 2000;
  for (int minute = 0; minute < total; ++minute) {
    const bool now = plan.episode_active(0, 7, net::FaultPlan::kLossEpisode,
                                         profile.episode_rate, dst, minute);
    // Pure function: asking again never changes the answer.
    EXPECT_EQ(now,
              plan.episode_active(0, 7, net::FaultPlan::kLossEpisode,
                                  profile.episode_rate, dst, minute));
    if (minute > 0 && now != last) ++transitions;
    last = now;
    if (now) ++active;
  }
  // Both states occur, and active minutes cluster into multi-bucket
  // episodes (far fewer transitions than active minutes — the
  // Gilbert–Elliott shape, not i.i.d. noise).
  EXPECT_GT(active, total / 20);
  EXPECT_LT(active, total * 19 / 20);
  EXPECT_LT(transitions, active);

  // Distinct streams decorrelate: the slow-episode stream differs from the
  // loss stream somewhere on the same walk.
  bool streams_differ = false;
  for (int minute = 0; minute < total && !streams_differ; ++minute) {
    streams_differ =
        plan.episode_active(0, 7, net::FaultPlan::kLossEpisode,
                            profile.episode_rate, dst, minute) !=
        plan.episode_active(0, 7, net::FaultPlan::kSlowEpisode,
                            profile.episode_rate, dst, minute);
  }
  EXPECT_TRUE(streams_differ);
}

TEST(FaultPlan, PayloadManglersAreDeterministic) {
  const std::vector<std::uint8_t> original(64, 0xab);
  std::vector<std::uint8_t> a = original;
  std::vector<std::uint8_t> b = original;
  net::FaultPlan::truncate_payload(a, 1234);
  net::FaultPlan::truncate_payload(b, 1234);
  EXPECT_EQ(a, b);
  EXPECT_LT(a.size(), original.size());
  EXPECT_GE(a.size(), 1u);

  std::vector<std::uint8_t> c = original;
  net::FaultPlan::corrupt_payload(c, 1234);
  EXPECT_EQ(c.size(), original.size());
  int flipped = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (c[i] != original[i]) ++flipped;
  }
  EXPECT_EQ(flipped, 1);  // exactly one byte flips, and it always flips
}

TEST(FaultPlan, RefusedReplyEchoesQueryWithRcode5) {
  const net::UdpPacket request =
      dns_query(net::Ipv4(9, 0, 0, 1), net::Ipv4(1, 0, 0, 10), 77, 0);
  const net::UdpReply reply = net::FaultPlan::make_refused_reply(request);
  EXPECT_EQ(reply.packet.src, request.dst);
  EXPECT_EQ(reply.packet.dst, request.src);
  const auto response = dns::Message::decode(reply.packet.payload);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->header.qr);
  EXPECT_EQ(response->header.id, 77);
  EXPECT_EQ(response->header.rcode, dns::RCode::kRefused);
}

// --- World integration ---------------------------------------------------

TEST(WorldFaults, BurstLossDropsForwardPackets) {
  MiniWorld mini = world_with_resolvers(1);
  net::FaultProfile profile = profile_for(kTestNet);
  profile.episode_rate = 1.0;  // an episode starts every bucket
  profile.burst_loss = 1.0;
  mini.world->add_fault_profile(profile);

  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(mini.world
                    ->send_udp(dns_query(net::Ipv4(9, 0, 0, 1),
                                         net::Ipv4(1, 0, 0, 10),
                                         static_cast<std::uint16_t>(i), i))
                    .empty());
  }
  EXPECT_EQ(mini.world->metrics().counter("fault.forward_lost").value(), 10u);
  EXPECT_EQ(mini.world->udp_delivered(), 0u);
}

TEST(WorldFaults, UnreachableEpisodeDropsEverything) {
  MiniWorld mini = world_with_resolvers(1);
  net::FaultProfile profile = profile_for(kTestNet);
  profile.unreachable_episode_rate = 1.0;
  mini.world->add_fault_profile(profile);
  EXPECT_TRUE(
      mini.world
          ->send_udp(dns_query(net::Ipv4(9, 0, 0, 1), net::Ipv4(1, 0, 0, 10),
                               1, 1))
          .empty());
  EXPECT_GT(mini.world->metrics().counter("fault.unreachable_drops").value(),
            0u);
  // TCP SYNs vanish during the episode too.
  EXPECT_EQ(mini.world->connect_tcp(net::Ipv4(9, 0, 0, 1),
                                    net::Ipv4(1, 0, 0, 10), 80),
            nullptr);
}

TEST(WorldFaults, RateLimitRefusesOverBudgetQueriesPerSource) {
  MiniWorld mini = world_with_resolvers(1);
  net::FaultProfile profile = profile_for(kTestNet);
  profile.rate_limit_per_minute = 1.0;
  profile.rate_limit_burst = 2.0;
  profile.rate_limit_action = net::RateLimitAction::kRefused;
  mini.world->add_fault_profile(profile);

  const net::Ipv4 resolver(1, 0, 0, 10);
  const auto rcode_of = [&](net::Ipv4 src, std::uint16_t txid) {
    const auto replies =
        mini.world->send_udp(dns_query(src, resolver, txid, txid));
    if (replies.empty()) return dns::RCode::kFormErr;  // sentinel
    const auto response = dns::Message::decode(replies.front().packet.payload);
    return response ? response->header.rcode : dns::RCode::kFormErr;
  };

  // The burst passes through to the resolver; the clock is frozen, so no
  // tokens refill and everything after is REFUSED at the network edge.
  EXPECT_EQ(rcode_of(net::Ipv4(9, 0, 0, 1), 1), dns::RCode::kNoError);
  EXPECT_EQ(rcode_of(net::Ipv4(9, 0, 0, 1), 2), dns::RCode::kNoError);
  EXPECT_EQ(rcode_of(net::Ipv4(9, 0, 0, 1), 3), dns::RCode::kRefused);
  EXPECT_EQ(rcode_of(net::Ipv4(9, 0, 0, 1), 4), dns::RCode::kRefused);
  // A different source has its own bucket.
  EXPECT_EQ(rcode_of(net::Ipv4(9, 0, 0, 2), 5), dns::RCode::kNoError);
  EXPECT_EQ(
      mini.world->metrics().counter("fault.rate_limited_refused").value(),
      2u);

  // Virtual time refills the bucket: a minute later one query is admitted.
  mini.world->set_time_minutes(mini.world->clock().minutes() + 1);
  EXPECT_EQ(rcode_of(net::Ipv4(9, 0, 0, 1), 6), dns::RCode::kNoError);
  EXPECT_EQ(rcode_of(net::Ipv4(9, 0, 0, 1), 7), dns::RCode::kRefused);
}

TEST(WorldFaults, RateLimitDropActionStaysSilent) {
  MiniWorld mini = world_with_resolvers(1);
  net::FaultProfile profile = profile_for(kTestNet);
  profile.rate_limit_per_minute = 1.0;
  profile.rate_limit_burst = 1.0;
  profile.rate_limit_action = net::RateLimitAction::kDrop;
  mini.world->add_fault_profile(profile);

  const net::Ipv4 resolver(1, 0, 0, 10);
  EXPECT_FALSE(
      mini.world->send_udp(dns_query(net::Ipv4(9, 0, 0, 1), resolver, 1, 1))
          .empty());
  EXPECT_TRUE(
      mini.world->send_udp(dns_query(net::Ipv4(9, 0, 0, 1), resolver, 2, 2))
          .empty());
  EXPECT_EQ(mini.world->metrics().counter("fault.rate_limited_drops").value(),
            1u);
}

TEST(WorldFaults, TruncatedRepliesExerciseParserErrorPaths) {
  MiniWorld mini = world_with_resolvers(1);
  net::FaultProfile profile = profile_for(kTestNet);
  profile.truncate_rate = 1.0;
  mini.world->add_fault_profile(profile);

  const auto replies = mini.world->send_udp(
      dns_query(net::Ipv4(9, 0, 0, 1), net::Ipv4(1, 0, 0, 10), 1, 1));
  ASSERT_EQ(replies.size(), 1u);
  // Strictly shorter than any well-formed answer: the decoder must reject
  // it cleanly rather than read out of bounds.
  EXPECT_FALSE(dns::Message::decode(replies.front().packet.payload)
                   .has_value());
  EXPECT_EQ(mini.world->metrics().counter("fault.truncated_replies").value(),
            1u);
}

TEST(WorldFaults, CorruptedRepliesDifferFromCleanRun) {
  const auto run = [](bool corrupt) {
    MiniWorld mini = world_with_resolvers(1);
    if (corrupt) {
      net::FaultProfile profile = profile_for(kTestNet);
      profile.corrupt_rate = 1.0;
      mini.world->add_fault_profile(profile);
    }
    const auto replies = mini.world->send_udp(
        dns_query(net::Ipv4(9, 0, 0, 1), net::Ipv4(1, 0, 0, 10), 1, 1));
    return replies.empty() ? std::vector<std::uint8_t>{}
                           : replies.front().packet.payload;
  };
  const auto clean = run(false);
  const auto mangled = run(true);
  ASSERT_FALSE(clean.empty());
  ASSERT_EQ(clean.size(), mangled.size());
  EXPECT_NE(clean, mangled);  // exactly one byte differs
}

TEST(WorldFaults, SlowEpisodeInflatesLatencyPastClientTimeout) {
  MiniWorld mini = world_with_resolvers(1);
  net::FaultProfile profile = profile_for(kTestNet);
  profile.slow_episode_rate = 1.0;
  profile.slow_extra_latency_ms = 4000;
  mini.world->add_fault_profile(profile);

  const auto replies = mini.world->send_udp(
      dns_query(net::Ipv4(9, 0, 0, 1), net::Ipv4(1, 0, 0, 10), 1, 1));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_GE(replies.front().latency_ms, 4000);

  // A client with a 1 s per-probe timeout never sees the reply; with the
  // timeout disabled the same probe succeeds.
  net::RetryPolicy impatient;
  impatient.timeout_ms = 1000;
  impatient.seed = 5;
  net::Retrier strict(*mini.world, impatient);
  const net::RetryOutcome missed = strict.send(
      dns_query(net::Ipv4(9, 0, 0, 1), net::Ipv4(1, 0, 0, 10), 2, 2));
  EXPECT_TRUE(missed.replies.empty());

  net::RetryPolicy patient;
  patient.seed = 5;
  net::Retrier lax(*mini.world, patient);
  EXPECT_FALSE(lax.send(dns_query(net::Ipv4(9, 0, 0, 1),
                                  net::Ipv4(1, 0, 0, 10), 3, 3))
                   .replies.empty());
  EXPECT_GT(mini.world->metrics().counter("retry.timed_out_replies").value(),
            0u);
}

// --- Retry policy --------------------------------------------------------

TEST(RetryPolicy, BackoffIsDeterministicJitteredExponential) {
  net::RetryPolicy policy;
  policy.backoff_initial_seconds = 0.5;
  policy.backoff_factor = 2.0;
  policy.jitter = 0.5;
  policy.seed = 42;
  for (int attempt = 1; attempt <= 4; ++attempt) {
    const double base = 0.5 * std::pow(2.0, attempt - 1);
    const double wait = policy.backoff_seconds(123, attempt);
    EXPECT_DOUBLE_EQ(wait, policy.backoff_seconds(123, attempt));
    EXPECT_GE(wait, base * 0.5);
    EXPECT_LE(wait, base * 1.5);
  }
  // Jitter is per-probe: distinct probes spread their retries apart.
  EXPECT_NE(policy.backoff_seconds(123, 1), policy.backoff_seconds(124, 1));
  // seeded() fills only an unset seed.
  EXPECT_EQ(policy.seeded(7).seed, 42u);
  net::RetryPolicy unseeded;
  EXPECT_EQ(unseeded.seeded(7).seed, 7u);
}

TEST(Retrier, OutcomesAccountTransmissionsAndWaits) {
  MiniWorld mini = world_with_resolvers(1);
  net::RetryPolicy policy;
  policy.attempts = 2;
  policy.seed = 3;
  net::Retrier retrier(*mini.world, policy);

  // Healthy destination: one transmission, no waiting.
  const net::RetryOutcome clean = retrier.send(
      dns_query(net::Ipv4(9, 0, 0, 1), net::Ipv4(1, 0, 0, 10), 1, 100));
  EXPECT_EQ(clean.transmissions, 1);
  EXPECT_FALSE(clean.exhausted);
  EXPECT_DOUBLE_EQ(clean.waited_seconds, 0.0);
  ASSERT_FALSE(clean.replies.empty());

  // Unbound destination: the full retransmission budget drains.
  const net::RetryOutcome dry = retrier.send(
      dns_query(net::Ipv4(9, 0, 0, 1), net::Ipv4(1, 0, 0, 99), 2, 200));
  EXPECT_EQ(dry.transmissions, 3);
  EXPECT_TRUE(dry.exhausted);
  EXPECT_TRUE(dry.replies.empty());
  EXPECT_GT(dry.waited_seconds, 0.0);
  EXPECT_EQ(mini.world->metrics().counter("retry.exhausted").value(), 1u);
  EXPECT_EQ(mini.world->metrics().counter("retry.retransmissions").value(),
            2u);
}

// --- Acceptance 1: thread-count invariance under faults ------------------

worldgen::WorldGenConfig chaos_world_config() {
  worldgen::WorldGenConfig config;
  config.seed = 99;
  config.resolver_count = 400;
  config.loss_rate = 0.01;
  config.chaos.enabled = true;
  config.chaos.network_fraction = 0.6;
  config.chaos.episode_rate = 0.4;
  config.chaos.burst_loss = 0.3;
  config.chaos.base_loss = 0.02;
  config.chaos.bucket_minutes = 30;
  config.chaos.rate_limit_per_minute = 60.0;
  config.chaos.rate_limit_burst = 24.0;
  config.chaos.rate_limit_refused = true;
  config.chaos.truncate_rate = 0.04;
  config.chaos.corrupt_rate = 0.04;
  config.chaos.slow_episode_rate = 0.1;
  config.chaos.unreachable_episode_rate = 0.05;
  return config;
}

// The scan battery under chaos at one thread count, reported as the
// masked (deterministic-only) metrics JSON plus the scan summary.
struct ChaosRun {
  scan::Ipv4ScanSummary summary;
  std::vector<scan::TupleRecord> records;
  std::string masked_metrics_json;
};

ChaosRun chaos_run_at(unsigned threads) {
  worldgen::GeneratedWorld gen =
      worldgen::generate_world(chaos_world_config());
  ChaosRun run;

  scan::Ipv4ScanConfig scan_config;
  scan_config.scanner_ip = gen.scanner_ip;
  scan_config.zone = gen.scan_zone;
  scan_config.blacklist = &gen.blacklist;
  scan_config.seed = 42;
  scan_config.spread_over_hours = 48.0;
  scan_config.retry.attempts = 2;
  scan_config.retry.timeout_ms = 2000;  // slow episodes force retries
  scan_config.threads = threads;
  scan::Ipv4Scanner scanner(*gen.world, scan_config);
  run.summary = scanner.scan(gen.universe);

  std::vector<net::Ipv4> resolvers = run.summary.noerror_targets;
  if (resolvers.size() > 120) resolvers.resize(120);
  std::vector<std::string> names;
  for (const core::StudyDomain& domain : gen.domains.all()) {
    names.push_back(domain.name);
    if (names.size() == 10) break;
  }
  scan::DomainScanConfig domain_config;
  domain_config.scanner_ip = gen.scanner_ip;
  domain_config.seed = 43;
  domain_config.spread_over_hours = 24.0;
  domain_config.threads = threads;
  domain_config.retry.attempts = 1;
  domain_config.retry.timeout_ms = 3000;
  scan::DomainScanner domain_scanner(*gen.world, domain_config);
  run.records = domain_scanner.scan(resolvers, names);

  run.masked_metrics_json = gen.world->metrics().to_json(true);
  return run;
}

TEST(FaultAcceptance, ChaosScanIsThreadCountInvariant) {
  const ChaosRun baseline = chaos_run_at(1);
  // The chaos actually bit: every fault class fired at least once, and the
  // retry plane both recovered probes and gave up on some.
  ASSERT_GT(baseline.summary.noerror, 0u);
  ASSERT_FALSE(baseline.records.empty());
  EXPECT_GT(baseline.summary.retry_retransmissions, 0u);
  EXPECT_GT(baseline.summary.retry_recovered, 0u);
  EXPECT_GT(baseline.summary.retry_exhausted, 0u);
  for (const char* name :
       {"fault.forward_lost", "fault.replies_lost", "fault.unreachable_drops",
        "fault.rate_limited_refused", "fault.truncated_replies",
        "fault.corrupted_replies", "fault.slowed_replies"}) {
    EXPECT_NE(baseline.masked_metrics_json.find(name), std::string::npos)
        << name;
  }

  // Byte-identical masked run reports — scan summaries, tuple records, and
  // every fault/retry counter — at 2 and 8 workers.
  const ChaosRun two = chaos_run_at(2);
  const ChaosRun eight = chaos_run_at(8);
  EXPECT_EQ(baseline.summary.noerror_targets, two.summary.noerror_targets);
  EXPECT_EQ(baseline.summary.noerror_targets, eight.summary.noerror_targets);
  EXPECT_EQ(baseline.summary.retry_wait_ms, two.summary.retry_wait_ms);
  EXPECT_EQ(baseline.summary.retry_wait_ms, eight.summary.retry_wait_ms);
  EXPECT_EQ(baseline.masked_metrics_json, two.masked_metrics_json);
  EXPECT_EQ(baseline.masked_metrics_json, eight.masked_metrics_json);
}

// --- Acceptance 2: retry recovers burst-lossy responders -----------------

TEST(FaultAcceptance, RetryRecoversBurstLossResponders) {
  const auto scan_with = [](bool faults, int attempts) {
    MiniWorld mini = world_with_resolvers(60, 13);
    if (faults) {
      net::FaultProfile profile = profile_for(kTestNet);
      profile.episode_rate = 1.0;  // permanently inside a burst episode
      profile.burst_loss = 0.2;    // 20% loss, each direction
      mini.world->add_fault_profile(profile);
    }
    scan::Ipv4ScanConfig config;
    config.scanner_ip = mini.scanner_ip;
    config.zone = mini.scan_zone;
    config.seed = 7;
    config.retry.attempts = attempts;
    scan::Ipv4Scanner scanner(*mini.world, config);
    return scanner.scan({kTestNet}).noerror;
  };

  const std::uint64_t zero_loss = scan_with(false, 0);
  ASSERT_EQ(zero_loss, 60u);
  const std::uint64_t single_shot = scan_with(true, 0);
  const std::uint64_t with_retry = scan_with(true, 3);

  // Per-transmission success is 0.8 * 0.8 = 64%; four transmissions lift
  // it to ~98%. The 95% bar separates the two policies cleanly.
  const std::uint64_t bar = zero_loss * 95 / 100;
  EXPECT_LT(single_shot, bar);
  EXPECT_GE(with_retry, bar);
}

// Pins the loss-ablation normalization (bench_micro): the recovered
// fraction must divide by the zero-loss scan under the SAME retry ladder.
// Retransmissions also recover the resolvers' intrinsic query drops, so a
// retried lossy cell can find MORE responders than the no-retry zero-loss
// scan — the old denominator pushed recovered_fraction past 1.0.
TEST(FaultAcceptance, LossRecoveryBaselineUsesSameRetryLadder) {
  const auto population_scan = [](double loss, int attempts) {
    worldgen::WorldGenConfig world_config;
    world_config.seed = 2015;
    world_config.resolver_count = 600;
    world_config.with_devices = false;
    if (loss > 0.0) {
      world_config.chaos.enabled = true;
      world_config.chaos.network_fraction = 1.0;
      world_config.chaos.episode_rate = 1.0;
      world_config.chaos.episode_mean_buckets = 8.0;
      world_config.chaos.burst_loss = loss;
      world_config.chaos.base_loss = loss;
    }
    worldgen::GeneratedWorld gen = worldgen::generate_world(world_config);
    scan::Ipv4ScanConfig config;
    config.scanner_ip = gen.scanner_ip;
    config.zone = gen.scan_zone;
    config.blacklist = &gen.blacklist;
    config.seed = 1;
    config.retry.attempts = attempts;
    config.retry.timeout_ms = 2000;
    scan::Ipv4Scanner scanner(*gen.world, config);
    return scanner.scan(gen.universe).noerror;
  };

  const std::uint64_t zero_loss_no_retry = population_scan(0.0, 0);
  const std::uint64_t zero_loss_retried = population_scan(0.0, 3);
  const std::uint64_t lossy_retried = population_scan(0.2, 3);

  // The ladder recovers intrinsic drops even with no network loss at all,
  // so the two candidate denominators genuinely differ...
  EXPECT_GT(zero_loss_retried, zero_loss_no_retry);
  // ...and the retried lossy scan beats the MISMATCHED baseline (the
  // recovered_fraction > 1.0 symptom this test pins)...
  EXPECT_GT(lossy_retried, zero_loss_no_retry);
  // ...while the same-ladder baseline bounds it at 1.0 by construction:
  // network loss can only remove responders from that population.
  EXPECT_LE(lossy_retried, zero_loss_retried);
}

// --- Acceptance 3: error budgets degrade gracefully ----------------------

TEST(FaultAcceptance, ExceededErrorBudgetRecordsDegradation) {
  worldgen::WorldGenConfig config;
  config.seed = 31;
  config.resolver_count = 300;
  config.chaos.enabled = true;
  config.chaos.network_fraction = 1.0;  // every resolver network suffers
  config.chaos.episode_rate = 1.0;
  config.chaos.burst_loss = 0.5;
  config.chaos.base_loss = 0.5;
  worldgen::GeneratedWorld gen = worldgen::generate_world(config);

  scan::Ipv4ScanConfig scan_config;
  scan_config.scanner_ip = gen.scanner_ip;
  scan_config.zone = gen.scan_zone;
  scan_config.blacklist = &gen.blacklist;
  scan_config.seed = 3;
  scan_config.retry.attempts = 4;  // find the population despite the loss
  scan::Ipv4Scanner scanner(*gen.world, scan_config);
  std::vector<net::Ipv4> resolvers =
      scanner.scan(gen.universe).noerror_targets;
  ASSERT_FALSE(resolvers.empty());
  if (resolvers.size() > 60) resolvers.resize(60);

  core::PipelineConfig pipeline_config;
  pipeline_config.scanner_ip = gen.scanner_ip;
  pipeline_config.vantage_ip = gen.vantage_ip;
  pipeline_config.seed = 5;
  // Single-shot domain scan against 50% loss: far beyond a 5% budget.
  pipeline_config.error_budget.domain_scan_unresponsive = 0.05;
  core::Pipeline pipeline(*gen.world, *gen.registry, pipeline_config);
  const core::StudyReport report = pipeline.run(resolvers, gen.domains);

  // The run completed: populations exist, classification ran, and the
  // breach is recorded instead of silently shrinking the tuple set.
  EXPECT_EQ(report.records.size(),
            resolvers.size() * report.domains.size());
  EXPECT_EQ(report.verdicts.size(), report.records.size());
  ASSERT_FALSE(report.degradations.empty());
  const core::StageDegradation& entry = report.degradations.front();
  EXPECT_EQ(entry.stage, "stage.domain_scan");
  EXPECT_NE(entry.cause.find("budget"), std::string::npos);
  EXPECT_GT(entry.affected, 0u);
  EXPECT_GE(report.metrics.counter_value("pipeline.degradations"), 1u);
}

}  // namespace
}  // namespace dnswild
