#include "core/dnssec_study.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "resolver/gfw.h"

namespace dnswild::core {
namespace {

using test::make_mini_world;
using test::MiniWorld;

class DnssecStudyTest : public ::testing::Test {
 protected:
  DnssecStudyTest() : mini_(make_mini_world()) {
    // An honest resolver behind the injector...
    resolver::ResolverConfig honest;
    honest.seed = 1;
    mini_.add_resolver(net::Ipv4(60, 0, 0, 10), honest);
    // ...and one outside monitored space.
    resolver::ResolverConfig clean;
    clean.seed = 2;
    mini_.add_resolver(net::Ipv4(1, 0, 0, 10), clean);

    resolver::GfwConfig gfw_config;
    gfw_config.monitored_prefixes = {net::Cidr(net::Ipv4(60, 0, 0, 0), 8)};
    gfw_config.censored_suffixes = {"good.example"};
    gfw_config.seed = 3;
    resolver::install_gfw(*mini_.world,
                          std::make_shared<resolver::GfwInjector>(
                              gfw_config));
  }

  DnssecOutcome run(std::vector<net::Ipv4> resolvers) {
    DnssecStudyConfig config;
    config.client_ip = net::Ipv4(9, 0, 0, 2);
    config.seed = 5;
    return run_dnssec_experiment(*mini_.world, *mini_.registry,
                                 resolvers, {"good.example"}, config);
  }

  MiniWorld mini_;
};

TEST_F(DnssecStudyTest, NaiveClientLosesTheRaceBehindTheInjector) {
  mini_.registry->set_dnssec("good.example", true);
  const auto outcome = run({net::Ipv4(60, 0, 0, 10)});
  EXPECT_EQ(outcome.queries, 1u);
  EXPECT_EQ(outcome.injected, 1u);
  // The forged answer arrives first: the naive client is poisoned.
  EXPECT_EQ(outcome.naive_poisoned, 1u);
  // The validating client waits for the AD-carrying honest answer.
  EXPECT_EQ(outcome.validating_poisoned, 0u);
  EXPECT_EQ(outcome.validating_unavailable, 0u);
  EXPECT_DOUBLE_EQ(outcome.validating_poison_rate(), 0.0);
  EXPECT_DOUBLE_EQ(outcome.naive_poison_rate(), 1.0);
}

TEST_F(DnssecStudyTest, UnsignedZoneLeavesValidatingClientExposed) {
  mini_.registry->set_dnssec("good.example", false);
  const auto outcome = run({net::Ipv4(60, 0, 0, 10)});
  EXPECT_EQ(outcome.naive_poisoned, 1u);
  // §5 precondition (ii): without deployment knowledge the validating
  // client accepts the first response like everyone else.
  EXPECT_EQ(outcome.validating_fallback_poisoned, 1u);
  EXPECT_DOUBLE_EQ(outcome.validating_poison_rate(), 1.0);
}

TEST_F(DnssecStudyTest, SuppressedHonestAnswerCostsAvailability) {
  mini_.registry->set_dnssec("good.example", true);
  // The resolver never answers the censored name (the GFW-suppression
  // pattern of most Chinese resolvers): only the forged reply exists.
  resolver::ResolverConfig suppressed;
  suppressed.seed = 7;
  resolver::Override ignore;
  ignore.domains = {"good.example"};
  ignore.action = resolver::OverrideAction::kIgnore;
  suppressed.behavior.overrides.push_back(ignore);
  mini_.add_resolver(net::Ipv4(60, 0, 0, 11), suppressed);

  const auto outcome = run({net::Ipv4(60, 0, 0, 11)});
  EXPECT_EQ(outcome.queries, 1u);
  EXPECT_EQ(outcome.naive_poisoned, 1u);
  // No validated response ever arrives: blocked, but unavailable.
  EXPECT_EQ(outcome.validating_poisoned, 0u);
  EXPECT_EQ(outcome.validating_unavailable, 1u);
}

TEST_F(DnssecStudyTest, CleanPathIsFineEitherWay) {
  mini_.registry->set_dnssec("good.example", true);
  const auto outcome = run({net::Ipv4(1, 0, 0, 10)});
  EXPECT_EQ(outcome.queries, 1u);
  EXPECT_EQ(outcome.injected, 0u);
  EXPECT_EQ(outcome.naive_poisoned, 0u);
  EXPECT_EQ(outcome.validating_poisoned, 0u);
  EXPECT_EQ(outcome.validating_unavailable, 0u);
}

TEST_F(DnssecStudyTest, SilentResolverProducesNoQuery) {
  const auto outcome = run({net::Ipv4(5, 5, 5, 99)});
  EXPECT_EQ(outcome.queries, 0u);
  EXPECT_DOUBLE_EQ(outcome.naive_poison_rate(), 0.0);
}

TEST(DnssecPlumbing, AdBitSurvivesTheWire) {
  dns::Message message;
  message.header.qr = true;
  message.header.ad = true;
  const auto decoded = dns::Message::decode(message.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.ad);
  message.header.ad = false;
  EXPECT_FALSE(dns::Message::decode(message.encode())->header.ad);
}

TEST(DnssecPlumbing, RegistryFlagsAndViews) {
  resolver::AuthRegistry registry;
  registry.add_cdn_domain("cdn.example", {net::Ipv4(1, 0, 0, 1)},
                          {{"CN", {net::Ipv4(2, 0, 0, 1)}}}, 60);
  EXPECT_FALSE(registry.dnssec_enabled("cdn.example"));
  registry.set_dnssec("cdn.example", true);
  EXPECT_TRUE(registry.dnssec_enabled("cdn.example"));
  EXPECT_TRUE(registry.resolve_a("cdn.example").dnssec);
  const auto views = registry.all_views("cdn.example");
  ASSERT_EQ(views.size(), 2u);  // default + regional, deduplicated
  EXPECT_TRUE(registry.all_views("nope.example").empty());
}

}  // namespace
}  // namespace dnswild::core
