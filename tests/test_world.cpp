#include "net/world.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dnswild::net {
namespace {

// Echo service: replies with the payload reversed.
class EchoService : public UdpService {
 public:
  void handle(const UdpPacket& request,
              std::vector<UdpReply>& replies) override {
    UdpReply reply;
    reply.packet.payload.assign(request.payload.rbegin(),
                                request.payload.rend());
    reply.latency_ms = 10;
    replies.push_back(std::move(reply));
  }
};

class SilentService : public UdpService {
 public:
  void handle(const UdpPacket&, std::vector<UdpReply>&) override {}
};

UdpPacket probe(Ipv4 dst, std::uint16_t port = 53) {
  UdpPacket packet;
  packet.src = Ipv4(9, 9, 9, 9);
  packet.src_port = 4000;
  packet.dst = dst;
  packet.dst_port = port;
  packet.payload = {1, 2, 3};
  return packet;
}

TEST(World, StaticHostBindsImmediately) {
  World world(1);
  HostConfig config;
  config.attachment.ip = Ipv4(1, 2, 3, 4);
  const HostId id = world.add_host(config);
  EXPECT_EQ(world.address_of(id), Ipv4(1, 2, 3, 4));
  EXPECT_EQ(world.host_at(Ipv4(1, 2, 3, 4)), id);
  EXPECT_EQ(world.host_at(Ipv4(1, 2, 3, 5)), kNoHost);
}

TEST(World, UdpDeliveryAndReplyDefaults) {
  World world(1);
  HostConfig config;
  config.attachment.ip = Ipv4(1, 2, 3, 4);
  const HostId id = world.add_host(config);
  world.set_udp_service(id, 53, std::make_unique<EchoService>());

  const auto replies = world.send_udp(probe(Ipv4(1, 2, 3, 4)));
  ASSERT_EQ(replies.size(), 1u);
  const UdpPacket& reply = replies[0].packet;
  EXPECT_EQ(reply.src, Ipv4(1, 2, 3, 4));
  EXPECT_EQ(reply.src_port, 53);
  EXPECT_EQ(reply.dst, Ipv4(9, 9, 9, 9));
  EXPECT_EQ(reply.dst_port, 4000);
  EXPECT_EQ(reply.payload, (std::vector<std::uint8_t>{3, 2, 1}));
}

TEST(World, ClosedPortProducesNoReply) {
  World world(1);
  HostConfig config;
  config.attachment.ip = Ipv4(1, 2, 3, 4);
  const HostId id = world.add_host(config);
  world.set_udp_service(id, 53, std::make_unique<EchoService>());
  EXPECT_TRUE(world.send_udp(probe(Ipv4(1, 2, 3, 4), 54)).empty());
  EXPECT_TRUE(world.send_udp(probe(Ipv4(5, 5, 5, 5))).empty());
}

TEST(World, IngressFilterByPortSourceAndTime) {
  World world(1);
  HostConfig config;
  config.attachment.ip = Ipv4(1, 2, 3, 4);
  const HostId id = world.add_host(config);
  world.set_udp_service(id, 53, std::make_unique<EchoService>());

  IngressFilter filter;
  filter.network = Cidr(Ipv4(1, 2, 3, 0), 24);
  filter.only_src = Ipv4(9, 9, 9, 9);
  filter.active_from_day = 10.0;
  world.add_ingress_filter(filter);

  // Before activation: traffic flows.
  EXPECT_EQ(world.send_udp(probe(Ipv4(1, 2, 3, 4))).size(), 1u);
  world.advance_days(11);
  // After activation: the filtered source is dropped...
  EXPECT_TRUE(world.send_udp(probe(Ipv4(1, 2, 3, 4))).empty());
  EXPECT_GT(world.udp_dropped_filtered(), 0u);
  // ...but another source still gets through (the verification scan, §2.2).
  UdpPacket other = probe(Ipv4(1, 2, 3, 4));
  other.src = Ipv4(8, 8, 8, 8);
  EXPECT_EQ(world.send_udp(other).size(), 1u);
}

TEST(World, InjectorRepliesPrecedeSlowHostReplies) {
  World world(1);
  HostConfig config;
  config.attachment.ip = Ipv4(1, 2, 3, 4);
  const HostId id = world.add_host(config);
  world.set_udp_service(id, 53, std::make_unique<EchoService>());

  world.add_injector([](const UdpPacket& request,
                        std::vector<UdpReply>& replies) {
    UdpReply forged;
    forged.packet.src = request.dst;
    forged.packet.src_port = request.dst_port;
    forged.packet.dst = request.src;
    forged.packet.dst_port = request.src_port;
    forged.packet.payload = {0xff};
    forged.latency_ms = 2;  // beats the host's 10 ms
    replies.push_back(std::move(forged));
  });

  const auto replies = world.send_udp(probe(Ipv4(1, 2, 3, 4)));
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].packet.payload, (std::vector<std::uint8_t>{0xff}));
  EXPECT_EQ(replies[1].packet.payload, (std::vector<std::uint8_t>{3, 2, 1}));
}

TEST(World, InjectorFiresEvenForUnboundDestinations) {
  // The GFW answers for any address in monitored space (§4.2).
  World world(1);
  int fired = 0;
  world.add_injector(
      [&fired](const UdpPacket&, std::vector<UdpReply>&) { ++fired; });
  world.send_udp(probe(Ipv4(7, 7, 7, 7)));
  EXPECT_EQ(fired, 1);
}

TEST(World, ActivityWindowUnbindsHosts) {
  World world(1);
  HostConfig config;
  config.attachment.ip = Ipv4(1, 2, 3, 4);
  config.active_until_day = 5.0;
  const HostId id = world.add_host(config);
  world.set_udp_service(id, 53, std::make_unique<EchoService>());
  EXPECT_EQ(world.send_udp(probe(Ipv4(1, 2, 3, 4))).size(), 1u);
  world.advance_days(6);
  EXPECT_FALSE(world.address_of(id).has_value());
  EXPECT_TRUE(world.send_udp(probe(Ipv4(1, 2, 3, 4))).empty());
}

TEST(World, FutureActivationBindsLater) {
  World world(1);
  HostConfig config;
  config.attachment.ip = Ipv4(1, 2, 3, 4);
  config.active_from_day = 10.0;
  const HostId id = world.add_host(config);
  EXPECT_FALSE(world.address_of(id).has_value());
  world.advance_days(11);
  EXPECT_EQ(world.address_of(id), Ipv4(1, 2, 3, 4));
}

TEST(World, DynamicHostRebindsOnLeaseExpiry) {
  World world(1);
  HostConfig config;
  config.attachment.dynamic = true;
  config.attachment.pool = Cidr(Ipv4(10, 64, 0, 0), 16);  // roomy pool
  config.attachment.mean_lease_days = 1.0;
  const HostId id = world.add_host(config);
  const auto initial = world.address_of(id);
  ASSERT_TRUE(initial.has_value());
  EXPECT_TRUE(config.attachment.pool.contains(*initial));

  // After many mean lifetimes the address has almost surely changed.
  world.advance_days(50);
  const auto later = world.address_of(id);
  ASSERT_TRUE(later.has_value());
  EXPECT_TRUE(config.attachment.pool.contains(*later));
  EXPECT_NE(*later, *initial);
}

TEST(World, LeaseScheduleIndependentOfSteppingPattern) {
  const auto addresses_at_day_30 = [](int steps) {
    World world(77);
    HostConfig config;
    config.attachment.dynamic = true;
    config.attachment.pool = Cidr(Ipv4(10, 64, 0, 0), 16);
    config.attachment.mean_lease_days = 2.0;
    const HostId id = world.add_host(config);
    for (int i = 0; i < steps; ++i) {
      world.advance_days(30.0 / steps);
    }
    return world.address_of(id);
  };
  EXPECT_EQ(addresses_at_day_30(1), addresses_at_day_30(30));
  EXPECT_EQ(addresses_at_day_30(2), addresses_at_day_30(15));
}

TEST(World, ExponentialLeaseSurvivalMatchesTheory) {
  // P(same address after t) = exp(-t / mean) for exponential leases.
  World world(5);
  const int hosts = 4000;
  std::vector<HostId> ids;
  HostConfig config;
  config.attachment.dynamic = true;
  config.attachment.pool = Cidr(Ipv4(10, 0, 0, 0), 10);  // huge: no collisions
  config.attachment.mean_lease_days = 10.0;
  std::vector<Ipv4> initial;
  for (int i = 0; i < hosts; ++i) {
    const HostId id = world.add_host(config);
    ids.push_back(id);
    initial.push_back(*world.address_of(id));
  }
  world.advance_days(10);  // one mean lifetime
  int unchanged = 0;
  for (int i = 0; i < hosts; ++i) {
    const auto address = world.address_of(ids[static_cast<std::size_t>(i)]);
    if (address && *address == initial[static_cast<std::size_t>(i)]) {
      ++unchanged;
    }
  }
  EXPECT_NEAR(unchanged / static_cast<double>(hosts), std::exp(-1.0), 0.03);
}

TEST(World, PoolCollisionDisplacesPreviousHolder) {
  World world(1);
  HostConfig stationary;
  stationary.attachment.ip = Ipv4(10, 64, 0, 5);
  const HostId first = world.add_host(stationary);
  EXPECT_EQ(world.host_at(Ipv4(10, 64, 0, 5)), first);

  // A second static host claiming the same address wins the binding (DHCP
  // race semantics); the displaced host reports no address.
  HostConfig claimant;
  claimant.attachment.ip = Ipv4(10, 64, 0, 5);
  const HostId second = world.add_host(claimant);
  EXPECT_EQ(world.host_at(Ipv4(10, 64, 0, 5)), second);
  EXPECT_FALSE(world.address_of(first).has_value());
  EXPECT_EQ(world.address_of(second), Ipv4(10, 64, 0, 5));
}

TEST(World, ScanSpreadAdvancesClock) {
  World world(1);
  const auto before = world.clock().minutes();
  world.advance_days(0.5);
  EXPECT_EQ(world.clock().minutes(), before + 720);
}

TEST(World, TimeCannotMoveBackwards) {
  World world(1);
  world.advance_days(5);
  EXPECT_THROW(world.set_time_minutes(0), std::logic_error);
}

TEST(World, LossRateDropsTraffic) {
  World world(123);
  HostConfig config;
  config.attachment.ip = Ipv4(1, 2, 3, 4);
  const HostId id = world.add_host(config);
  world.set_udp_service(id, 53, std::make_unique<EchoService>());
  world.set_loss_rate(0.5);
  int answered = 0;
  for (int i = 0; i < 2000; ++i) {
    // Distinct seq per transmission: a packet's fate is a pure hash of its
    // identity, so identical retransmissions must bump seq to re-roll.
    UdpPacket packet = probe(Ipv4(1, 2, 3, 4));
    packet.seq = static_cast<std::uint32_t>(i);
    if (!world.send_udp(packet).empty()) ++answered;
  }
  // Request and reply both face 50% loss: ~25% success.
  EXPECT_NEAR(answered / 2000.0, 0.25, 0.05);
}

TEST(World, ReturnPathLossCountedSeparately) {
  World world(123);
  HostConfig config;
  config.attachment.ip = Ipv4(1, 2, 3, 4);
  const HostId id = world.add_host(config);
  world.set_udp_service(id, 53, std::make_unique<EchoService>());
  world.set_loss_rate(0.5);
  int answered = 0;
  for (int i = 0; i < 2000; ++i) {
    UdpPacket packet = probe(Ipv4(1, 2, 3, 4));
    packet.seq = static_cast<std::uint32_t>(i);
    if (!world.send_udp(packet).empty()) ++answered;
  }
  // The two directions roll independent dice: of the ~1000 delivered
  // requests, about half lose their reply on the way back — and those
  // land in net.udp.replies_lost, not in the forward-loss counter.
  const std::uint64_t forward =
      world.metrics().counter("net.udp.lost").value();
  const std::uint64_t replies =
      world.metrics().counter("net.udp.replies_lost").value();
  EXPECT_NEAR(static_cast<double>(forward) / 2000.0, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(replies) / 1000.0, 0.5, 0.08);
  EXPECT_EQ(static_cast<std::uint64_t>(answered),
            world.udp_delivered() - replies);
}

TEST(World, IngressFilterOnlySrcUnsetDropsEverySource) {
  World world(1);
  HostConfig config;
  config.attachment.ip = Ipv4(1, 2, 3, 4);
  const HostId id = world.add_host(config);
  world.set_udp_service(id, 53, std::make_unique<EchoService>());

  IngressFilter filter;
  filter.network = Cidr(Ipv4(1, 2, 3, 0), 24);  // no only_src: all sources
  world.add_ingress_filter(filter);

  EXPECT_TRUE(world.send_udp(probe(Ipv4(1, 2, 3, 4))).empty());
  UdpPacket other = probe(Ipv4(1, 2, 3, 4));
  other.src = Ipv4(8, 8, 8, 8);
  EXPECT_TRUE(world.send_udp(other).empty());
  // Destinations outside the filtered network are untouched.
  HostConfig outside;
  outside.attachment.ip = Ipv4(1, 2, 4, 4);
  world.set_udp_service(world.add_host(outside), 53,
                        std::make_unique<EchoService>());
  EXPECT_EQ(world.send_udp(probe(Ipv4(1, 2, 4, 4))).size(), 1u);
  (void)id;
}

TEST(World, IngressFilterActivatesExactlyOnBoundaryDay) {
  World world(1);
  HostConfig config;
  config.attachment.ip = Ipv4(1, 2, 3, 4);
  const HostId id = world.add_host(config);
  world.set_udp_service(id, 53, std::make_unique<EchoService>());

  IngressFilter filter;
  filter.network = Cidr(Ipv4(1, 2, 3, 0), 24);
  filter.only_src = Ipv4(9, 9, 9, 9);
  filter.active_from_day = 10.0;
  world.add_ingress_filter(filter);

  world.advance_days(9.5);  // just before the boundary: traffic flows
  EXPECT_EQ(world.send_udp(probe(Ipv4(1, 2, 3, 4))).size(), 1u);
  world.advance_days(0.5);  // exactly day 10: the filter is live
  EXPECT_TRUE(world.send_udp(probe(Ipv4(1, 2, 3, 4))).empty());
}

TEST(World, TcpConnectReachesService) {
  World world(1);
  HostConfig config;
  config.attachment.ip = Ipv4(1, 2, 3, 4);
  const HostId id = world.add_host(config);

  class Banner : public TcpService {
   public:
    std::string greeting() const override { return "220 hi\r\n"; }
  };
  world.set_tcp_service(id, 21, std::make_unique<Banner>());

  TcpService* service = world.connect_tcp(Ipv4(9, 9, 9, 9), Ipv4(1, 2, 3, 4),
                                          21);
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->greeting(), "220 hi\r\n");
  EXPECT_EQ(world.connect_tcp(Ipv4(9, 9, 9, 9), Ipv4(1, 2, 3, 4), 22),
            nullptr);
  EXPECT_EQ(world.connect_tcp(Ipv4(9, 9, 9, 9), Ipv4(5, 5, 5, 5), 21),
            nullptr);
}

TEST(World, ServiceReplacement) {
  World world(1);
  HostConfig config;
  config.attachment.ip = Ipv4(1, 2, 3, 4);
  const HostId id = world.add_host(config);
  world.set_udp_service(id, 53, std::make_unique<SilentService>());
  EXPECT_TRUE(world.send_udp(probe(Ipv4(1, 2, 3, 4))).empty());
  world.set_udp_service(id, 53, std::make_unique<EchoService>());
  EXPECT_EQ(world.send_udp(probe(Ipv4(1, 2, 3, 4))).size(), 1u);
}

TEST(World, StatisticsCounters) {
  World world(1);
  HostConfig config;
  config.attachment.ip = Ipv4(1, 2, 3, 4);
  const HostId id = world.add_host(config);
  world.set_udp_service(id, 53, std::make_unique<EchoService>());
  world.send_udp(probe(Ipv4(1, 2, 3, 4)));
  world.send_udp(probe(Ipv4(5, 5, 5, 5)));
  EXPECT_EQ(world.udp_sent(), 2u);
  EXPECT_EQ(world.udp_delivered(), 1u);
}

}  // namespace
}  // namespace dnswild::net
