#include "analysis/software_classify.h"

#include <gtest/gtest.h>

namespace dnswild::analysis {
namespace {

struct BannerCase {
  const char* banner;
  const char* software;  // nullptr = unparseable
  const char* version;
};

class VersionBannerTest : public ::testing::TestWithParam<BannerCase> {};

TEST_P(VersionBannerTest, Parsing) {
  const auto parsed = parse_version_banner(GetParam().banner);
  if (GetParam().software == nullptr) {
    EXPECT_FALSE(parsed.has_value()) << GetParam().banner;
  } else {
    ASSERT_TRUE(parsed.has_value()) << GetParam().banner;
    EXPECT_EQ(parsed->software, GetParam().software);
    EXPECT_EQ(parsed->version, GetParam().version);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Banners, VersionBannerTest,
    ::testing::Values(
        BannerCase{"BIND 9.8.2", "BIND", "9.8.2"},
        BannerCase{"bind 9.3.6-P1-RedHat-9.3.6-25.P1.el5_11.11", "BIND",
                   "9.3.6"},
        BannerCase{"named 9.7.3", "BIND", "9.7.3"},
        BannerCase{"9.9.5", "BIND", "9.9.5"},  // bare version => BIND default
        BannerCase{"dnsmasq-2.40", "Dnsmasq", "2.40"},
        BannerCase{"Dnsmasq 2.52", "Dnsmasq", "2.52"},
        BannerCase{"unbound 1.4.22", "Unbound", "1.4.22"},
        BannerCase{"PowerDNS Recursor 3.5.3", "PowerDNS", "3.5.3"},
        BannerCase{"Microsoft DNS 6.1.7601 (1DB15D39)", "Microsoft DNS",
                   "6.1.7601"},
        BannerCase{"Nominum Vantio 5.4.1", "Nominum Vantio", "5.4.1"},
        BannerCase{"Make my day", nullptr, nullptr},
        BannerCase{"none", nullptr, nullptr},
        BannerCase{"get lost", nullptr, nullptr},
        BannerCase{"surely you must be joking", nullptr, nullptr}));

scan::ChaosResult reveal(const char* banner) {
  scan::ChaosResult result;
  result.resolver = net::Ipv4(1, 1, 1, 1);
  result.responded = true;
  result.rcode_bind = dns::RCode::kNoError;
  result.rcode_server = dns::RCode::kNoError;
  result.version_bind = banner;
  result.version_server = banner;
  return result;
}

TEST(ClassifyChaos, Revealing) {
  const auto cls = classify_chaos(reveal("BIND 9.8.2"));
  EXPECT_EQ(cls.cls, ChaosClass::kRevealing);
  ASSERT_TRUE(cls.parsed.has_value());
  EXPECT_EQ(cls.parsed->software, "BIND");
}

TEST(ClassifyChaos, HiddenString) {
  const auto cls = classify_chaos(reveal("Make my day"));
  EXPECT_EQ(cls.cls, ChaosClass::kHiddenString);
}

TEST(ClassifyChaos, ErrorBoth) {
  scan::ChaosResult result;
  result.responded = true;
  result.rcode_bind = dns::RCode::kRefused;
  result.rcode_server = dns::RCode::kServFail;
  EXPECT_EQ(classify_chaos(result).cls, ChaosClass::kErrorBoth);
}

TEST(ClassifyChaos, NoVersion) {
  scan::ChaosResult result;
  result.responded = true;
  result.rcode_bind = dns::RCode::kNoError;
  result.rcode_server = dns::RCode::kNoError;
  EXPECT_EQ(classify_chaos(result).cls, ChaosClass::kNoVersion);
}

TEST(ClassifyChaos, Unresponsive) {
  scan::ChaosResult result;
  EXPECT_EQ(classify_chaos(result).cls, ChaosClass::kUnresponsive);
}

TEST(ClassifyChaos, OneErrorOneRevealStillReveals) {
  scan::ChaosResult result;
  result.responded = true;
  result.rcode_bind = dns::RCode::kRefused;
  result.rcode_server = dns::RCode::kNoError;
  result.version_server = "unbound 1.4.22";
  const auto cls = classify_chaos(result);
  EXPECT_EQ(cls.cls, ChaosClass::kRevealing);
  EXPECT_EQ(cls.parsed->software, "Unbound");
}

TEST(SummarizeSoftware, AggregatesAndRanks) {
  std::vector<scan::ChaosResult> scan;
  for (int i = 0; i < 30; ++i) scan.push_back(reveal("BIND 9.8.2"));
  for (int i = 0; i < 10; ++i) scan.push_back(reveal("dnsmasq-2.40"));
  for (int i = 0; i < 5; ++i) scan.push_back(reveal("Make my day"));
  scan::ChaosResult errors;
  errors.responded = true;
  errors.rcode_bind = dns::RCode::kRefused;
  errors.rcode_server = dns::RCode::kRefused;
  for (int i = 0; i < 20; ++i) scan.push_back(errors);
  scan.push_back(scan::ChaosResult{});  // unresponsive

  const SoftwareReport report = summarize_software(scan, 10);
  EXPECT_EQ(report.responded, 65u);
  EXPECT_EQ(report.revealing, 40u);
  EXPECT_EQ(report.hidden, 5u);
  EXPECT_EQ(report.error_both, 20u);
  ASSERT_GE(report.top.size(), 2u);
  EXPECT_EQ(report.top[0].software, "BIND 9.8.2");
  EXPECT_EQ(report.top[0].count, 30u);
  EXPECT_NEAR(report.top[0].share_of_revealing, 0.75, 1e-9);
  // Catalog annotation picked up for known versions.
  EXPECT_EQ(report.top[0].released, "Apr 2012");
  EXPECT_FALSE(report.top[0].cves.empty());
  EXPECT_NEAR(report.bind_share_of_revealing, 0.75, 1e-9);
  EXPECT_GT(report.vulnerable_dos_share, 0.9);
  // BIND 9.8.2 carries the IP-bypass CVE; dnsmasq does not.
  EXPECT_NEAR(report.vulnerable_bypass_share, 0.75, 1e-9);
}

TEST(SummarizeSoftware, TopNLimit) {
  std::vector<scan::ChaosResult> scan;
  scan.push_back(reveal("BIND 9.8.2"));
  scan.push_back(reveal("BIND 9.3.6"));
  scan.push_back(reveal("dnsmasq-2.40"));
  const SoftwareReport report = summarize_software(scan, 2);
  EXPECT_EQ(report.top.size(), 2u);
}

}  // namespace
}  // namespace dnswild::analysis
