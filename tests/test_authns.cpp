#include "resolver/authns.h"

#include <gtest/gtest.h>

namespace dnswild::resolver {
namespace {

TEST(AuthRegistry, PlainDomainResolution) {
  AuthRegistry registry;
  registry.add_domain("example.com", {net::Ipv4(1, 1, 1, 1)}, 300);
  const auto answer = registry.resolve_a("example.com");
  EXPECT_EQ(answer.rcode, dns::RCode::kNoError);
  ASSERT_EQ(answer.ips.size(), 1u);
  EXPECT_EQ(answer.ips[0], net::Ipv4(1, 1, 1, 1));
  EXPECT_EQ(answer.ttl, 300u);
}

TEST(AuthRegistry, CaseInsensitiveLookup) {
  AuthRegistry registry;
  registry.add_domain("Example.COM", {net::Ipv4(1, 1, 1, 1)});
  EXPECT_EQ(registry.resolve_a("EXAMPLE.com").rcode, dns::RCode::kNoError);
  EXPECT_TRUE(registry.exists("example.Com"));
}

TEST(AuthRegistry, UnknownIsNxDomain) {
  AuthRegistry registry;
  registry.add_domain("example.com", {net::Ipv4(1, 1, 1, 1)});
  EXPECT_EQ(registry.resolve_a("other.com").rcode, dns::RCode::kNxDomain);
  // Subdomains of non-wildcard zones do not resolve.
  EXPECT_EQ(registry.resolve_a("www.example.com").rcode,
            dns::RCode::kNxDomain);
  EXPECT_FALSE(registry.exists("www.example.com"));
}

TEST(AuthRegistry, WildcardZoneMatchesDescendants) {
  AuthRegistry registry;
  registry.add_domain("probe.study.example", {net::Ipv4(9, 9, 9, 9)}, 60,
                      /*wildcard=*/true);
  // The scan encodes targets as prefix.hex-ip.zone (§2.2).
  EXPECT_EQ(registry.resolve_a("px7.c0a80101.probe.study.example").rcode,
            dns::RCode::kNoError);
  EXPECT_EQ(registry.resolve_a("probe.study.example").rcode,
            dns::RCode::kNoError);
  EXPECT_TRUE(registry.exists("deep.a.b.probe.study.example"));
  EXPECT_EQ(registry.resolve_a("study.example").rcode,
            dns::RCode::kNxDomain);
}

TEST(AuthRegistry, CdnRegionalViews) {
  AuthRegistry registry;
  registry.add_cdn_domain(
      "cdn.example", {net::Ipv4(1, 0, 0, 1)},
      {{"CN", {net::Ipv4(2, 0, 0, 1)}}, {"DE", {net::Ipv4(3, 0, 0, 1)}}}, 60);
  EXPECT_EQ(registry.resolve_a("cdn.example", "CN").ips[0],
            net::Ipv4(2, 0, 0, 1));
  EXPECT_EQ(registry.resolve_a("cdn.example", "DE").ips[0],
            net::Ipv4(3, 0, 0, 1));
  // Unlisted regions fall back to the default view.
  EXPECT_EQ(registry.resolve_a("cdn.example", "BR").ips[0],
            net::Ipv4(1, 0, 0, 1));
  EXPECT_EQ(registry.resolve_a("cdn.example").ips[0], net::Ipv4(1, 0, 0, 1));
}

TEST(AuthRegistry, Tlds) {
  AuthRegistry registry;
  registry.add_tld("com", {"a.gtld.example", "b.gtld.example"}, 172800);
  registry.add_tld("de", {"a.nic.de"}, 86400);
  const auto* com = registry.tld("COM");
  ASSERT_NE(com, nullptr);
  EXPECT_EQ(com->ns_names.size(), 2u);
  EXPECT_EQ(com->ttl, 172800u);
  EXPECT_EQ(registry.tld("org"), nullptr);
  EXPECT_EQ(registry.all_tlds(), (std::vector<std::string>{"com", "de"}));
}

TEST(AuthRegistry, Certificates) {
  AuthRegistry registry;
  net::Certificate cert;
  cert.common_name = "bank.example";
  registry.set_certificate("bank.example", cert);
  const auto fetched = registry.certificate("BANK.example");
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->common_name, "bank.example");
  EXPECT_FALSE(registry.certificate("other.example").has_value());
}

TEST(AuthRegistry, WildcardCertificateCoversChildren) {
  AuthRegistry registry;
  net::Certificate cert;
  cert.common_name = "*.cdn.example";
  registry.set_certificate("cdn.example", cert);
  const auto child = registry.certificate("edge1.cdn.example");
  ASSERT_TRUE(child.has_value());
  EXPECT_EQ(child->common_name, "*.cdn.example");
  // Two labels below: wildcard covers one label only.
  EXPECT_FALSE(registry.certificate("a.b.cdn.example").has_value());
}

TEST(AuthRegistry, CnameChainsFollowedToAddresses) {
  AuthRegistry registry;
  registry.add_cname("www.shop.example", "shop.example");
  registry.add_cname("shop.example", "edge.cdn.example");
  registry.add_cdn_domain("edge.cdn.example", {net::Ipv4(9, 0, 0, 1)},
                          {{"CN", {net::Ipv4(9, 0, 0, 2)}}}, 60);
  const auto answer = registry.resolve_a("www.shop.example");
  EXPECT_EQ(answer.rcode, dns::RCode::kNoError);
  ASSERT_EQ(answer.ips.size(), 1u);
  EXPECT_EQ(answer.ips[0], net::Ipv4(9, 0, 0, 1));
  ASSERT_EQ(answer.cname_chain.size(), 2u);
  EXPECT_EQ(answer.cname_chain[0].first, "www.shop.example");
  EXPECT_EQ(answer.cname_chain[0].second, "shop.example");
  EXPECT_EQ(answer.cname_chain[1].second, "edge.cdn.example");
  // Regional views still apply at the chain tail.
  EXPECT_EQ(registry.resolve_a("www.shop.example", "CN").ips[0],
            net::Ipv4(9, 0, 0, 2));
}

TEST(AuthRegistry, DanglingCnameIsNxDomain) {
  AuthRegistry registry;
  registry.add_cname("a.example", "missing.example");
  EXPECT_EQ(registry.resolve_a("a.example").rcode, dns::RCode::kNxDomain);
}

TEST(AuthRegistry, CnameLoopIsServFail) {
  AuthRegistry registry;
  registry.add_cname("a.example", "b.example");
  registry.add_cname("b.example", "a.example");
  EXPECT_EQ(registry.resolve_a("a.example").rcode, dns::RCode::kServFail);
}

TEST(AuthRegistry, ARecordForForwardConfirmation) {
  AuthRegistry registry;
  registry.add_a_record("host3.avira.com", net::Ipv4(7, 7, 7, 7));
  const auto answer = registry.resolve_a("host3.avira.com");
  EXPECT_EQ(answer.rcode, dns::RCode::kNoError);
  EXPECT_EQ(answer.ips[0], net::Ipv4(7, 7, 7, 7));
}

}  // namespace
}  // namespace dnswild::resolver
