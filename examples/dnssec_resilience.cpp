// DNSSEC resilience check: the §5 discussion as a client-side tool.
//
// Given a world, this example asks: if I were a client behind each open
// resolver, how often would a naive stub accept a forged answer for a
// censored domain, and how much would strict DNSSEC validation actually
// help at a given deployment level?
//
//   $ ./examples/dnssec_resilience [resolver_count] [deployment_pct]

#include <cstdio>
#include <cstdlib>

#include "core/dnssec_study.h"
#include "scan/ipv4scan.h"
#include "util/rng.h"
#include "util/table.h"
#include "worldgen/worldgen.h"

int main(int argc, char** argv) {
  using namespace dnswild;

  worldgen::WorldGenConfig config;
  config.resolver_count = argc > 1 ? static_cast<std::uint32_t>(
                                         std::strtoul(argv[1], nullptr, 10))
                                   : 6000;
  config.seed = 11;
  const double deployment =
      argc > 2 ? std::strtod(argv[2], nullptr) / 100.0 : 0.006;
  auto generated = worldgen::generate_world(config);

  scan::Ipv4ScanConfig scan_config;
  scan_config.scanner_ip = generated.scanner_ip;
  scan_config.zone = generated.scan_zone;
  scan_config.blacklist = &generated.blacklist;
  scan_config.seed = 1;
  scan::Ipv4Scanner scanner(*generated.world, scan_config);
  const auto population = scanner.scan(generated.universe);

  const std::vector<std::string> censored = {"facebook.com", "twitter.com",
                                             "youtube.com"};
  util::Rng rng(99);
  for (const auto& domain : censored) {
    generated.registry->set_dnssec(domain, rng.chance(deployment));
  }

  core::DnssecStudyConfig study_config;
  study_config.client_ip = generated.vantage_ip;
  study_config.seed = 17;
  const auto outcome = core::run_dnssec_experiment(
      *generated.world, *generated.registry, population.noerror_targets,
      censored, study_config);

  std::printf("DNSSEC deployment level: %.1f%% of the censored set\n",
              100.0 * deployment);
  std::printf("Queries answered: %s; injected races observed: %s\n",
              util::with_commas(outcome.queries).c_str(),
              util::with_commas(outcome.injected).c_str());
  std::printf("Naive client poisoned:      %.2f%%\n",
              100.0 * outcome.naive_poison_rate());
  std::printf("Validating client poisoned: %.2f%%\n",
              100.0 * outcome.validating_poison_rate());
  std::printf("Validating unavailable:     %.2f%% (signed domain, honest "
              "answer suppressed)\n",
              outcome.queries == 0
                  ? 0.0
                  : 100.0 *
                        static_cast<double>(outcome.validating_unavailable) /
                        static_cast<double>(outcome.queries));
  std::printf("\nThe paper's §5 point: at the 2015 deployment level (<0.6%%) "
              "a validating client is indistinguishable from a naive one; "
              "re-run with a higher deployment%% to see protection traded "
              "against availability.\n");
  return 0;
}
