// Quickstart: build a small simulated Internet, enumerate the open
// resolvers with one Internet-wide scan, and run the full manipulation
// study over them — the same flow as the paper's Fig. 3 processing chain.
//
//   $ ./examples/quickstart [resolver_count] [seed] [--metrics-out FILE]
//                           [--trace-out FILE] [--prefixes-out FILE]
//                           [--cluster-mode exact|lsh|auto]
//                           [--max-in-flight N]
//                           [--worldgen eager|lazy] [--scan-only]
//                           [--campaign N --store DIR [--resume] [--delta]
//                            [--epoch-interval-days D] [--full-every N]
//                            [--campaign-report FILE]
//                            [--kill-during-epoch K]]
//                           [--list-epochs --store DIR]
//
// --metrics-out (or DNSWILD_METRICS_OUT) writes the machine-readable run
// report — every registry counter plus the per-stage spans — as JSON.
// --trace-out writes the virtual-time flight recorder as Chrome
// trace-event JSON — load it at https://ui.perfetto.dev (DESIGN.md §13).
// --prefixes-out writes the per-/20 telemetry table
// ("dnswild.prefixes.v1"): probes, rcode mix, fault hits, rate limiting
// and rebind churn per prefix.
// --cluster-mode selects the coarse clustering engine (DESIGN.md §10):
// the exact O(n²) HAC (default), the sub-quadratic MinHash/LSH path, or
// the size-based auto crossover.
// --max-in-flight bounds the virtual-time event core's in-flight window
// (DESIGN.md §11) for the address-space and domain scans; 1 reproduces
// the synchronous serialized accounting, the default keeps the pipe full.
// --worldgen lazy derives resolver hosts on first probe instead of
// eagerly (DESIGN.md §12), so 10M+-resolver worlds fit in memory; both
// modes produce identical scan results for the same seed.
// --scan-only stops after the Internet-wide enumeration (step 1) —
// useful for memory/throughput measurements at large scale.
// --campaign N runs the longitudinal campaign engine (DESIGN.md §14):
// N weekly enumeration epochs persisted to --store DIR. --resume picks an
// interrupted campaign back up from the last good stored epoch; --delta
// re-probes only changed /20 prefixes after the first full sweep, with a
// full-sweep backstop every --full-every epochs. --campaign-report writes
// the masked campaign JSON ("dnswild.campaign.v1"). --kill-during-epoch K
// raises SIGKILL after epoch K's scan but before it is persisted — the
// crash drill the resume path is tested against.
// --list-epochs prints what the store holds (per-epoch tallies plus any
// corrupt files quarantined during validation) without scanning.

#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/fluctuation.h"
#include "campaign/campaign.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "scan/ipv4scan.h"
#include "util/table.h"
#include "worldgen/worldgen.h"

int main(int argc, char** argv) {
  using namespace dnswild;

  // Pull the option flags out of argv before the positional arguments.
  std::string metrics_out;
  std::string trace_out;
  std::string prefixes_out;
  std::string cluster_mode;
  std::string worldgen_mode;
  bool scan_only = false;
  std::uint32_t max_in_flight = 65536;
  std::uint32_t campaign_epochs = 0;
  std::string store_dir;
  std::string campaign_report;
  bool resume = false;
  bool delta = false;
  bool list_epochs = false;
  double epoch_interval_days = 7.0;  // fractional ok; 0 freezes the clock
  std::uint32_t full_every = 4;
  int kill_during_epoch = -1;
  if (const char* env = std::getenv("DNSWILD_METRICS_OUT")) metrics_out = env;
  for (int i = 1; i < argc;) {
    int consumed = 0;
    if (std::strcmp(argv[i], "--scan-only") == 0) {
      scan_only = true;
      consumed = 1;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
      consumed = 1;
    } else if (std::strcmp(argv[i], "--delta") == 0) {
      delta = true;
      consumed = 1;
    } else if (std::strcmp(argv[i], "--list-epochs") == 0) {
      list_epochs = true;
      consumed = 1;
    } else if (i + 1 < argc) {
      if (std::strcmp(argv[i], "--metrics-out") == 0) {
        metrics_out = argv[i + 1];
        consumed = 2;
      } else if (std::strcmp(argv[i], "--trace-out") == 0) {
        trace_out = argv[i + 1];
        consumed = 2;
      } else if (std::strcmp(argv[i], "--prefixes-out") == 0) {
        prefixes_out = argv[i + 1];
        consumed = 2;
      } else if (std::strcmp(argv[i], "--cluster-mode") == 0) {
        cluster_mode = argv[i + 1];
        consumed = 2;
      } else if (std::strcmp(argv[i], "--worldgen") == 0) {
        worldgen_mode = argv[i + 1];
        consumed = 2;
      } else if (std::strcmp(argv[i], "--max-in-flight") == 0) {
        max_in_flight = static_cast<std::uint32_t>(
            std::strtoul(argv[i + 1], nullptr, 10));
        if (max_in_flight == 0) max_in_flight = 1;
        consumed = 2;
      } else if (std::strcmp(argv[i], "--campaign") == 0) {
        campaign_epochs = static_cast<std::uint32_t>(
            std::strtoul(argv[i + 1], nullptr, 10));
        consumed = 2;
      } else if (std::strcmp(argv[i], "--store") == 0) {
        store_dir = argv[i + 1];
        consumed = 2;
      } else if (std::strcmp(argv[i], "--campaign-report") == 0) {
        campaign_report = argv[i + 1];
        consumed = 2;
      } else if (std::strcmp(argv[i], "--epoch-interval-days") == 0) {
        epoch_interval_days = std::strtod(argv[i + 1], nullptr);
        if (epoch_interval_days < 0) epoch_interval_days = 0;
        consumed = 2;
      } else if (std::strcmp(argv[i], "--full-every") == 0) {
        full_every = static_cast<std::uint32_t>(
            std::strtoul(argv[i + 1], nullptr, 10));
        consumed = 2;
      } else if (std::strcmp(argv[i], "--kill-during-epoch") == 0) {
        kill_during_epoch =
            static_cast<int>(std::strtol(argv[i + 1], nullptr, 10));
        consumed = 2;
      }
    }
    if (consumed == 0) {
      ++i;
      continue;
    }
    for (int j = i; j + consumed < argc; ++j) argv[j] = argv[j + consumed];
    argc -= consumed;
  }
  if (!cluster_mode.empty() && cluster_mode != "exact" &&
      cluster_mode != "lsh" && cluster_mode != "auto") {
    std::fprintf(stderr, "unknown --cluster-mode %s (exact|lsh|auto)\n",
                 cluster_mode.c_str());
    return 2;
  }
  if (!worldgen_mode.empty() && worldgen_mode != "eager" &&
      worldgen_mode != "lazy") {
    std::fprintf(stderr, "unknown --worldgen %s (eager|lazy)\n",
                 worldgen_mode.c_str());
    return 2;
  }

  worldgen::WorldGenConfig config;
  config.resolver_count = argc > 1 ? static_cast<std::uint32_t>(
                                         std::strtoul(argv[1], nullptr, 10))
                                   : 4000;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  config.lazy = worldgen_mode == "lazy";

  std::printf("Generating a world with ~%u open resolvers (seed %llu, %s)...\n",
              config.resolver_count,
              static_cast<unsigned long long>(config.seed),
              config.lazy ? "lazy" : "eager");
  auto generated = worldgen::generate_world(config);

  // Longitudinal campaign modes (DESIGN.md §14) replace the one-shot
  // Fig. 3 pipeline below.
  if (campaign_epochs > 0 || list_epochs) {
    if (store_dir.empty()) {
      std::fprintf(stderr, "--campaign/--list-epochs require --store DIR\n");
      return 2;
    }
    campaign::CampaignTargets targets;
    targets.scanner_ip = generated.scanner_ip;
    targets.zone = generated.scan_zone;
    targets.blacklist = &generated.blacklist;
    targets.universe = generated.universe;
    campaign::CampaignConfig campaign_config;
    campaign_config.store_dir = store_dir;
    campaign_config.epochs = campaign_epochs > 0 ? campaign_epochs : 1;
    campaign_config.interval_minutes = static_cast<std::uint64_t>(
        std::llround(epoch_interval_days * 1440.0));
    campaign_config.seed = config.seed;
    campaign_config.delta = delta;
    campaign_config.full_every = full_every;
    campaign_config.max_in_flight = max_in_flight;
    campaign::CampaignEngine engine(*generated.world, targets,
                                    campaign_config);

    if (list_epochs) {
      campaign::EpochStore store(store_dir, engine.config_hash());
      const auto scan_result = store.load_all();
      std::printf("Campaign store %s: %zu good epoch(s)\n", store_dir.c_str(),
                  scan_result.epochs.size());
      for (const auto& epoch : scan_result.epochs) {
        std::printf(
            "  epoch %u  %-5s  start_minute %llu  probed %s  "
            "population %s  degradations %zu\n",
            epoch.index,
            epoch.kind == campaign::EpochKind::kDelta ? "delta" : "full",
            static_cast<unsigned long long>(epoch.start_minute),
            util::with_commas(epoch.probed).c_str(),
            util::with_commas(epoch.population.size()).c_str(),
            epoch.degradations.size());
      }
      for (const auto& issue : scan_result.issues) {
        std::printf("  REJECTED %s: %s\n", issue.file.c_str(),
                    issue.cause.c_str());
      }
      return 0;
    }

    if (kill_during_epoch >= 0) {
      engine.set_mid_epoch_hook([kill_during_epoch](std::uint32_t index) {
        if (static_cast<int>(index) == kill_during_epoch) {
          std::raise(SIGKILL);
        }
      });
    }
    campaign::CampaignResult result;
    try {
      result = engine.run(resume);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "campaign failed: %s\n", error.what());
      return 1;
    }
    std::printf("\nCampaign: %zu epoch(s), resumed from epoch %u\n",
                result.epochs.size(), result.resumed_from);
    for (const auto& issue : result.store_issues) {
      std::printf("  store issue: %s (%s)\n", issue.file.c_str(),
                  issue.cause.c_str());
    }
    for (const auto& epoch : result.epochs) {
      std::printf(
          "  epoch %u  %-5s  probed %s  population %s  carried %s\n",
          epoch.index,
          epoch.kind == campaign::EpochKind::kDelta ? "delta" : "full",
          util::with_commas(epoch.probed).c_str(),
          util::with_commas(epoch.population.size()).c_str(),
          util::with_commas(epoch.carried_forward).c_str());
    }
    if (result.summary.delta_epochs > 0) {
      std::printf(
          "  delta economy: %.1f%% of a full sweep's probes per delta "
          "epoch\n",
          result.summary.delta_probe_fraction * 100.0);
    }
    if (!result.summary.churn.empty()) {
      const auto& last = result.summary.churn.back();
      std::printf("  churn: %.1f%% of epoch-0 responders alive after %.0f "
                  "days\n",
                  last.alive_fraction * 100.0, last.age_days);
    }
    if (!campaign_report.empty()) {
      if (result.dump_json(campaign_report, /*mask=*/true)) {
        std::printf("Campaign report written to %s\n",
                    campaign_report.c_str());
      } else {
        std::fprintf(stderr, "failed to write %s\n", campaign_report.c_str());
        return 1;
      }
    }
    return 0;
  }

  // Step 1: Internet-wide scan to enumerate open resolvers.
  scan::Ipv4ScanConfig scan_config;
  scan_config.scanner_ip = generated.scanner_ip;
  scan_config.zone = generated.scan_zone;
  scan_config.blacklist = &generated.blacklist;
  scan_config.seed = config.seed;
  scan_config.max_in_flight = max_in_flight;
  scan::Ipv4Scanner scanner(*generated.world, scan_config);
  const auto summary = scanner.scan(generated.universe);

  std::printf("\nInternet-wide scan over %llu addresses:\n",
              static_cast<unsigned long long>(summary.probed));
  std::printf("  NOERROR  %s\n",
              util::with_commas(summary.noerror).c_str());
  std::printf("  REFUSED  %s\n",
              util::with_commas(summary.refused).c_str());
  std::printf("  SERVFAIL %s\n",
              util::with_commas(summary.servfail).c_str());
  std::printf("  multi-homed replies: %s\n",
              util::with_commas(summary.multihomed).c_str());
  std::printf("  virtual scan time: %.1fs (window %u, peak in flight %u)\n",
              summary.virtual_scan_seconds, max_in_flight,
              summary.peak_in_flight);
  if (config.lazy) {
    const auto stats = generated.world->lazy_stats();
    std::printf(
        "  lazy hosts: %llu materialized, %llu evicted, %zu resident "
        "(%zu pinned)\n",
        static_cast<unsigned long long>(stats.materializations),
        static_cast<unsigned long long>(stats.evictions), stats.resident,
        stats.pinned);
  }
  if (scan_only) {
    std::printf("\n--scan-only: stopping after enumeration.\n");
    if (!trace_out.empty()) {
      generated.world->trace().dump_chrome_json(trace_out);
      std::printf("Perfetto trace written to %s\n", trace_out.c_str());
    }
    if (!prefixes_out.empty()) {
      generated.world->prefix_telemetry().snapshot().dump_json(prefixes_out);
      std::printf("Prefix telemetry written to %s\n", prefixes_out.c_str());
    }
    return 0;
  }

  // Step 2: query the 155-domain study set at every open resolver, then
  // prefilter, acquire, cluster, and label.
  core::PipelineConfig pipeline_config;
  pipeline_config.scanner_ip = generated.scanner_ip;
  pipeline_config.vantage_ip = generated.vantage_ip;
  pipeline_config.seed = config.seed;
  pipeline_config.scan_max_in_flight = max_in_flight;
  if (cluster_mode == "lsh") {
    pipeline_config.classifier.mode = core::ClusterMode::kLsh;
  } else if (cluster_mode == "auto") {
    pipeline_config.classifier.mode = core::ClusterMode::kAuto;
  }
  core::Pipeline pipeline(*generated.world, *generated.registry,
                          pipeline_config);
  const core::StudyReport report =
      pipeline.run(summary.noerror_targets, generated.domains);

  if (report.classification.lsh.used) {
    const auto& stats = report.classification.lsh.stats;
    std::printf(
        "\nLSH clustering: %zu pages, %zu groups (largest %zu), "
        "%llu/%llu exact distances (%.0fx reduction), %zu stitch merges\n",
        stats.items, stats.groups, stats.largest_group,
        static_cast<unsigned long long>(stats.candidate_pairs),
        static_cast<unsigned long long>(stats.full_pairs),
        stats.pair_reduction, stats.stitch_merges);
  }

  std::printf("\nPrefiltering (%s tuples):\n",
              util::with_commas(report.prefilter_stats.tuples).c_str());
  std::printf("%s\n", core::render_prefilter(report).c_str());
  std::printf("Classification:\n%s\n",
              core::render_classification(report).c_str());
  std::printf("%s\n", core::render_table5(report).c_str());
  std::printf("%s\n", core::render_censorship(report).c_str());
  std::printf("%s\n", core::render_case_studies(report).c_str());
  std::printf("Fine-grained page modifications:\n%s\n",
              core::render_modifications(report).c_str());

  std::printf("Pipeline stages (items in/out, wall time):\n%s\n",
              core::render_stage_summary(report).c_str());

  const std::string hot = core::render_hot_prefixes(report);
  if (!hot.empty()) {
    std::printf("Hot prefixes (faults + rate limiting + timeouts):\n%s\n",
                hot.c_str());
  }

  if (!metrics_out.empty()) {
    if (report.metrics.dump_json(metrics_out)) {
      std::printf("Run report written to %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", metrics_out.c_str());
      return 1;
    }
  }
  if (!trace_out.empty()) {
    if (generated.world->trace().dump_chrome_json(trace_out,
                                                  &report.metrics)) {
      std::printf("Perfetto trace written to %s\n", trace_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
      return 1;
    }
  }
  if (!prefixes_out.empty()) {
    if (report.prefixes.dump_json(prefixes_out)) {
      std::printf("Prefix telemetry written to %s\n", prefixes_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", prefixes_out.c_str());
      return 1;
    }
  }
  return 0;
}
