// Quickstart: build a small simulated Internet, enumerate the open
// resolvers with one Internet-wide scan, and run the full manipulation
// study over them — the same flow as the paper's Fig. 3 processing chain.
//
//   $ ./examples/quickstart [resolver_count] [seed] [--metrics-out FILE]
//                           [--trace-out FILE] [--prefixes-out FILE]
//                           [--cluster-mode exact|lsh|auto]
//                           [--max-in-flight N]
//                           [--worldgen eager|lazy] [--scan-only]
//
// --metrics-out (or DNSWILD_METRICS_OUT) writes the machine-readable run
// report — every registry counter plus the per-stage spans — as JSON.
// --trace-out writes the virtual-time flight recorder as Chrome
// trace-event JSON — load it at https://ui.perfetto.dev (DESIGN.md §13).
// --prefixes-out writes the per-/20 telemetry table
// ("dnswild.prefixes.v1"): probes, rcode mix, fault hits, rate limiting
// and rebind churn per prefix.
// --cluster-mode selects the coarse clustering engine (DESIGN.md §10):
// the exact O(n²) HAC (default), the sub-quadratic MinHash/LSH path, or
// the size-based auto crossover.
// --max-in-flight bounds the virtual-time event core's in-flight window
// (DESIGN.md §11) for the address-space and domain scans; 1 reproduces
// the synchronous serialized accounting, the default keeps the pipe full.
// --worldgen lazy derives resolver hosts on first probe instead of
// eagerly (DESIGN.md §12), so 10M+-resolver worlds fit in memory; both
// modes produce identical scan results for the same seed.
// --scan-only stops after the Internet-wide enumeration (step 1) —
// useful for memory/throughput measurements at large scale.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/fluctuation.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "scan/ipv4scan.h"
#include "util/table.h"
#include "worldgen/worldgen.h"

int main(int argc, char** argv) {
  using namespace dnswild;

  // Pull the option flags out of argv before the positional arguments.
  std::string metrics_out;
  std::string trace_out;
  std::string prefixes_out;
  std::string cluster_mode;
  std::string worldgen_mode;
  bool scan_only = false;
  std::uint32_t max_in_flight = 65536;
  if (const char* env = std::getenv("DNSWILD_METRICS_OUT")) metrics_out = env;
  for (int i = 1; i < argc;) {
    int consumed = 0;
    if (std::strcmp(argv[i], "--scan-only") == 0) {
      scan_only = true;
      consumed = 1;
    } else if (i + 1 < argc) {
      if (std::strcmp(argv[i], "--metrics-out") == 0) {
        metrics_out = argv[i + 1];
        consumed = 2;
      } else if (std::strcmp(argv[i], "--trace-out") == 0) {
        trace_out = argv[i + 1];
        consumed = 2;
      } else if (std::strcmp(argv[i], "--prefixes-out") == 0) {
        prefixes_out = argv[i + 1];
        consumed = 2;
      } else if (std::strcmp(argv[i], "--cluster-mode") == 0) {
        cluster_mode = argv[i + 1];
        consumed = 2;
      } else if (std::strcmp(argv[i], "--worldgen") == 0) {
        worldgen_mode = argv[i + 1];
        consumed = 2;
      } else if (std::strcmp(argv[i], "--max-in-flight") == 0) {
        max_in_flight = static_cast<std::uint32_t>(
            std::strtoul(argv[i + 1], nullptr, 10));
        if (max_in_flight == 0) max_in_flight = 1;
        consumed = 2;
      }
    }
    if (consumed == 0) {
      ++i;
      continue;
    }
    for (int j = i; j + consumed < argc; ++j) argv[j] = argv[j + consumed];
    argc -= consumed;
  }
  if (!cluster_mode.empty() && cluster_mode != "exact" &&
      cluster_mode != "lsh" && cluster_mode != "auto") {
    std::fprintf(stderr, "unknown --cluster-mode %s (exact|lsh|auto)\n",
                 cluster_mode.c_str());
    return 2;
  }
  if (!worldgen_mode.empty() && worldgen_mode != "eager" &&
      worldgen_mode != "lazy") {
    std::fprintf(stderr, "unknown --worldgen %s (eager|lazy)\n",
                 worldgen_mode.c_str());
    return 2;
  }

  worldgen::WorldGenConfig config;
  config.resolver_count = argc > 1 ? static_cast<std::uint32_t>(
                                         std::strtoul(argv[1], nullptr, 10))
                                   : 4000;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  config.lazy = worldgen_mode == "lazy";

  std::printf("Generating a world with ~%u open resolvers (seed %llu, %s)...\n",
              config.resolver_count,
              static_cast<unsigned long long>(config.seed),
              config.lazy ? "lazy" : "eager");
  auto generated = worldgen::generate_world(config);

  // Step 1: Internet-wide scan to enumerate open resolvers.
  scan::Ipv4ScanConfig scan_config;
  scan_config.scanner_ip = generated.scanner_ip;
  scan_config.zone = generated.scan_zone;
  scan_config.blacklist = &generated.blacklist;
  scan_config.seed = config.seed;
  scan_config.max_in_flight = max_in_flight;
  scan::Ipv4Scanner scanner(*generated.world, scan_config);
  const auto summary = scanner.scan(generated.universe);

  std::printf("\nInternet-wide scan over %llu addresses:\n",
              static_cast<unsigned long long>(summary.probed));
  std::printf("  NOERROR  %s\n",
              util::with_commas(summary.noerror).c_str());
  std::printf("  REFUSED  %s\n",
              util::with_commas(summary.refused).c_str());
  std::printf("  SERVFAIL %s\n",
              util::with_commas(summary.servfail).c_str());
  std::printf("  multi-homed replies: %s\n",
              util::with_commas(summary.multihomed).c_str());
  std::printf("  virtual scan time: %.1fs (window %u, peak in flight %u)\n",
              summary.virtual_scan_seconds, max_in_flight,
              summary.peak_in_flight);
  if (config.lazy) {
    const auto stats = generated.world->lazy_stats();
    std::printf(
        "  lazy hosts: %llu materialized, %llu evicted, %zu resident "
        "(%zu pinned)\n",
        static_cast<unsigned long long>(stats.materializations),
        static_cast<unsigned long long>(stats.evictions), stats.resident,
        stats.pinned);
  }
  if (scan_only) {
    std::printf("\n--scan-only: stopping after enumeration.\n");
    if (!trace_out.empty()) {
      generated.world->trace().dump_chrome_json(trace_out);
      std::printf("Perfetto trace written to %s\n", trace_out.c_str());
    }
    if (!prefixes_out.empty()) {
      generated.world->prefix_telemetry().snapshot().dump_json(prefixes_out);
      std::printf("Prefix telemetry written to %s\n", prefixes_out.c_str());
    }
    return 0;
  }

  // Step 2: query the 155-domain study set at every open resolver, then
  // prefilter, acquire, cluster, and label.
  core::PipelineConfig pipeline_config;
  pipeline_config.scanner_ip = generated.scanner_ip;
  pipeline_config.vantage_ip = generated.vantage_ip;
  pipeline_config.seed = config.seed;
  pipeline_config.scan_max_in_flight = max_in_flight;
  if (cluster_mode == "lsh") {
    pipeline_config.classifier.mode = core::ClusterMode::kLsh;
  } else if (cluster_mode == "auto") {
    pipeline_config.classifier.mode = core::ClusterMode::kAuto;
  }
  core::Pipeline pipeline(*generated.world, *generated.registry,
                          pipeline_config);
  const core::StudyReport report =
      pipeline.run(summary.noerror_targets, generated.domains);

  if (report.classification.lsh.used) {
    const auto& stats = report.classification.lsh.stats;
    std::printf(
        "\nLSH clustering: %zu pages, %zu groups (largest %zu), "
        "%llu/%llu exact distances (%.0fx reduction), %zu stitch merges\n",
        stats.items, stats.groups, stats.largest_group,
        static_cast<unsigned long long>(stats.candidate_pairs),
        static_cast<unsigned long long>(stats.full_pairs),
        stats.pair_reduction, stats.stitch_merges);
  }

  std::printf("\nPrefiltering (%s tuples):\n",
              util::with_commas(report.prefilter_stats.tuples).c_str());
  std::printf("%s\n", core::render_prefilter(report).c_str());
  std::printf("Classification:\n%s\n",
              core::render_classification(report).c_str());
  std::printf("%s\n", core::render_table5(report).c_str());
  std::printf("%s\n", core::render_censorship(report).c_str());
  std::printf("%s\n", core::render_case_studies(report).c_str());
  std::printf("Fine-grained page modifications:\n%s\n",
              core::render_modifications(report).c_str());

  std::printf("Pipeline stages (items in/out, wall time):\n%s\n",
              core::render_stage_summary(report).c_str());

  const std::string hot = core::render_hot_prefixes(report);
  if (!hot.empty()) {
    std::printf("Hot prefixes (faults + rate limiting + timeouts):\n%s\n",
                hot.c_str());
  }

  if (!metrics_out.empty()) {
    if (report.metrics.dump_json(metrics_out)) {
      std::printf("Run report written to %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", metrics_out.c_str());
      return 1;
    }
  }
  if (!trace_out.empty()) {
    if (generated.world->trace().dump_chrome_json(trace_out,
                                                  &report.metrics)) {
      std::printf("Perfetto trace written to %s\n", trace_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
      return 1;
    }
  }
  if (!prefixes_out.empty()) {
    if (report.prefixes.dump_json(prefixes_out)) {
      std::printf("Prefix telemetry written to %s\n", prefixes_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", prefixes_out.c_str());
      return 1;
    }
  }
  return 0;
}
