// Censorship survey: the §4.2 workflow as a standalone application.
//
// Enumerates open resolvers, queries a focused domain list (social /
// adult / gambling — the censorship-prone categories), prefilters, labels,
// and prints which countries censor what, with which compliance, plus the
// landing-page infrastructure it discovered. Demonstrates using the
// pipeline's building blocks directly rather than the all-in-one Pipeline.
//
//   $ ./examples/censorship_survey [resolver_count] [seed]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "core/pipeline.h"
#include "core/report.h"
#include "scan/ipv4scan.h"
#include "util/table.h"
#include "worldgen/worldgen.h"

int main(int argc, char** argv) {
  using namespace dnswild;

  worldgen::WorldGenConfig config;
  config.resolver_count = argc > 1 ? static_cast<std::uint32_t>(
                                         std::strtoul(argv[1], nullptr, 10))
                                   : 5000;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2015;
  auto generated = worldgen::generate_world(config);

  scan::Ipv4ScanConfig scan_config;
  scan_config.scanner_ip = generated.scanner_ip;
  scan_config.zone = generated.scan_zone;
  scan_config.blacklist = &generated.blacklist;
  scan_config.seed = 1;
  scan::Ipv4Scanner scanner(*generated.world, scan_config);
  const auto population = scanner.scan(generated.universe);
  std::printf("Open resolvers found: %s\n\n",
              util::with_commas(population.noerror).c_str());

  core::PipelineConfig pipeline_config;
  pipeline_config.scanner_ip = generated.scanner_ip;
  pipeline_config.vantage_ip = generated.vantage_ip;
  pipeline_config.seed = config.seed;
  core::Pipeline pipeline(*generated.world, *generated.registry,
                          pipeline_config);
  const core::StudyReport report =
      pipeline.run(population.noerror_targets, generated.domains);

  // Which domains get censored, and from where?
  std::map<std::string, std::map<std::string, std::uint64_t>>
      domain_country;  // domain -> country -> censoring resolvers
  std::set<net::Ipv4> landing_ips;
  for (const auto& tuple : report.classification.tuples) {
    if (tuple.label != core::Label::kCensorship) continue;
    const auto& record = report.records[tuple.record_index];
    const auto& domain = report.domains[record.domain_index];
    const auto country = report.asdb->country_of(
        report.resolvers[record.resolver_id]);
    ++domain_country[domain.name][country.empty() ? "??"
                                                  : std::string(country)];
  }
  landing_ips.insert(report.censorship.landing_ips.begin(),
                     report.censorship.landing_ips.end());

  util::Table table({"Domain", "Censoring resolvers", "Top countries"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kLeft});
  for (const auto& [domain, countries] : domain_country) {
    std::uint64_t total = 0;
    std::vector<std::pair<std::uint64_t, std::string>> ranked;
    for (const auto& [country, count] : countries) {
      total += count;
      ranked.emplace_back(count, country);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    std::string top;
    for (std::size_t i = 0; i < ranked.size() && i < 3; ++i) {
      if (i != 0) top += ", ";
      top += ranked[i].second + " (" +
             util::with_commas(ranked[i].first) + ")";
    }
    table.add_row({domain, util::with_commas(total), top});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Distinct censorship landing addresses observed: %zu\n\n",
              landing_ips.size());
  std::printf("%s\n", core::render_censorship(report).c_str());
  return 0;
}
