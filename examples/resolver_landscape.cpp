// Resolver landscape survey: the §2 workflow as a standalone application.
//
// Enumerates open resolvers, then answers the questions of the paper's
// first half for that population: what software do they run (CHAOS
// fingerprinting), what hardware are they (TCP banner fingerprinting), how
// stable are their addresses (churn re-probing), and are they actually used
// by clients (cache snooping)?
//
//   $ ./examples/resolver_landscape [resolver_count] [seed]

#include <cstdio>
#include <cstdlib>

#include "analysis/churn.h"
#include "analysis/fingerprint.h"
#include "analysis/software_classify.h"
#include "analysis/utilization.h"
#include "core/domains.h"
#include "scan/banner_scan.h"
#include "scan/chaos_scan.h"
#include "scan/ipv4scan.h"
#include "scan/snoop_probe.h"
#include "util/table.h"
#include "worldgen/worldgen.h"

int main(int argc, char** argv) {
  using namespace dnswild;

  worldgen::WorldGenConfig config;
  config.resolver_count = argc > 1 ? static_cast<std::uint32_t>(
                                         std::strtoul(argv[1], nullptr, 10))
                                   : 5000;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  auto generated = worldgen::generate_world(config);

  scan::Ipv4ScanConfig scan_config;
  scan_config.scanner_ip = generated.scanner_ip;
  scan_config.zone = generated.scan_zone;
  scan_config.blacklist = &generated.blacklist;
  scan_config.seed = 1;
  scan::Ipv4Scanner scanner(*generated.world, scan_config);
  const auto population = scanner.scan(generated.universe);
  std::printf("Open resolvers: %s (REFUSED %s, SERVFAIL %s)\n\n",
              util::with_commas(population.noerror).c_str(),
              util::with_commas(population.refused).c_str(),
              util::with_commas(population.servfail).c_str());

  // --- software (§2.4) --------------------------------------------------
  scan::ChaosScanner chaos(*generated.world, generated.scanner_ip, 3);
  const auto software = analysis::summarize_software(
      chaos.scan(population.noerror_targets), 5);
  std::printf("DNS software (of %s CHAOS responders, %.1f%% revealing):\n",
              util::with_commas(software.responded).c_str(),
              100.0 * static_cast<double>(software.revealing) /
                  static_cast<double>(software.responded));
  for (const auto& row : software.top) {
    std::printf("  %-28s %6s  %5.1f%%\n", row.software.c_str(),
                util::with_commas(row.count).c_str(),
                100.0 * row.share_of_revealing);
  }

  // --- devices (§2.4) ----------------------------------------------------
  scan::BannerScanner banners(*generated.world, generated.scanner_ip);
  const analysis::DeviceFingerprinter fingerprinter;
  const auto devices =
      fingerprinter.summarize(banners.scan(population.noerror_targets));
  std::printf("\nDevices (%s with TCP services):\n",
              util::with_commas(devices.tcp_responsive).c_str());
  for (const auto& row : devices.hardware) {
    std::printf("  %-10s %6s  %5.1f%%\n", row.key.c_str(),
                util::with_commas(row.count).c_str(), 100.0 * row.share);
  }

  // --- churn (§2.5) ------------------------------------------------------
  generated.world->advance_days(7);
  const auto reprobe = scanner.probe_targets(population.noerror_targets);
  std::printf("\nAfter one week, %s of %s still answer at the same address "
              "(%.1f%%; paper: 47.8%%)\n",
              util::with_commas(reprobe.noerror).c_str(),
              util::with_commas(population.noerror).c_str(),
              100.0 * static_cast<double>(reprobe.noerror) /
                  static_cast<double>(population.noerror));

  // --- utilization (§2.6) -------------------------------------------------
  std::vector<net::Ipv4> sample = reprobe.noerror_targets;
  if (sample.size() > 400) sample.resize(400);
  scan::SnoopCampaignConfig snoop_config;
  snoop_config.scanner_ip = generated.scanner_ip;
  snoop_config.seed = 11;
  scan::SnoopProber prober(*generated.world, snoop_config);
  const auto series = prober.run(sample, core::snoop_tlds());
  const auto utilization = analysis::summarize_utilization(
      series, static_cast<std::uint32_t>(sample.size()),
      analysis::UtilizationConfig{});
  std::printf("\nUtilization of %zu snooped resolvers: %.1f%% in use, "
              "%.1f%% frequently (re-added <= 5 s)\n",
              sample.size(),
              100.0 * static_cast<double>(utilization.in_use()) /
                  static_cast<double>(utilization.total),
              100.0 *
                  static_cast<double>(utilization.per_class[static_cast<int>(
                      analysis::UtilizationClass::kFrequentlyUsed)]) /
                  static_cast<double>(utilization.total));
  return 0;
}
